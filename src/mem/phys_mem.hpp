// Simulated physical memory.
//
// A paged byte store standing in for the 256 MB of RAM on the paper's
// target machines (we default much smaller; the miniature kernel needs
// well under 2 MB).  Byte-addressed; multi-byte accessors exist in both
// endiannesses because the P4-like machine (cisca) is little-endian while
// the G4-like machine (riscf) is big-endian, exactly as the real
// processors were.
//
// Snapshots of physical memory are the simulation's substitute for the
// paper's "reboot the target system" step: restoring a snapshot returns the
// machine to a known-good state in microseconds instead of minutes.
//
// Three hot-loop services live here because every store in the system —
// workload stores executed by the CPU models, injected bit flips, kernel
// glue writes, snapshot restores — funnels through this class:
//
//   * Per-page write versions.  Each write bumps a monotonic counter for
//     the page(s) it touches.  The CPUs' predecoded-instruction and
//     superblock caches validate entries against these counters, so a
//     store into cached code (self-modification, an injected flip, a
//     reboot) invalidates exactly the stale entries — a correctness
//     requirement in a framework whose whole point is corrupting code
//     bytes.
//
//   * Dirty-page fast reboot.  A snapshot taken via snapshot_shared()
//     becomes the restore "baseline"; restore() then brings back only the
//     pages whose version moved since the baseline was last in sync,
//     turning the per-injection reboot from O(memory size) into
//     O(pages written by the run).  Snapshots are shared immutable
//     buffers, so holding one (e.g. the boot snapshot) costs one copy
//     total, not one per holder.
//
//   * Copy-on-write page sharing.  Memory is a table of per-page read
//     pointers: a page either aliases an immutable shared buffer (a
//     snapshot, or the all-zero page) or a private 4 KiB copy owned by
//     this instance.  Writes materialize the private copy on first touch.
//     Restoring a shared snapshot re-points pages instead of copying
//     them, so N worker machines rebooting from one boot snapshot hold
//     ~1 memory image plus their private dirty pages — not N full
//     images.  `set_cow_enabled(false)` keeps every page private and
//     restores by memcpy (the pre-COW behavior); contents and version
//     counters are bit-identical either way.
#pragma once

#include <cstring>
#include <memory>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace kfi::mem {

enum class Endian { kLittle, kBig };

/// Page geometry shared by the MMU and the dirty/version tracking.
constexpr u32 kPageSize = 4096;
constexpr u32 kPageShift = 12;
constexpr u32 kPageMask = kPageSize - 1;

class PhysicalMemory {
 public:
  /// Immutable shared snapshot buffer; one copy no matter how many holders.
  using Snapshot = std::vector<u8>;
  using SnapshotPtr = std::shared_ptr<const Snapshot>;

  explicit PhysicalMemory(u32 size_bytes);

  u32 size() const { return size_; }
  u32 num_pages() const { return static_cast<u32>(page_version_.size()); }

  /// Monotonic write counter of one page; bumped by every store into the
  /// page (including snapshot restores that rewrite it).  The decode and
  /// superblock caches use this to detect stale entries.
  u64 page_version(u32 page) const { return page_version_[page]; }

  /// Copy-on-write control.  Enabled by default; disabling materializes
  /// every page so all subsequent restores copy instead of re-pointing.
  void set_cow_enabled(bool on);
  bool cow_enabled() const { return cow_; }

  /// Pages with private backing storage allocated — the instance's
  /// resident footprint beyond shared snapshot buffers (COW observability
  /// for the campaign-scaling bench).
  u32 private_pages() const;

  u8 read8(u32 pa) const {
    check_range(pa, 1);
    return read_pages_[pa >> kPageShift][pa & kPageMask];
  }
  void write8(u32 pa, u8 value) {
    check_range(pa, 1);
    mark_written(pa, 1);
    writable(pa >> kPageShift)[pa & kPageMask] = value;
  }

  u16 read16(u32 pa, Endian endian) const {
    check_range(pa, 2);
    const u32 off = pa & kPageMask;
    if (off + 2 <= kPageSize) {
      const u8* p = read_pages_[pa >> kPageShift] + off;
      if (endian == Endian::kLittle) {
        return static_cast<u16>(p[0] | (p[1] << 8));
      }
      return static_cast<u16>((p[0] << 8) | p[1]);
    }
    return read_split16(pa, endian);
  }
  void write16(u32 pa, u16 value, Endian endian) {
    check_range(pa, 2);
    mark_written(pa, 2);
    const u32 off = pa & kPageMask;
    if (off + 2 <= kPageSize) {
      u8* p = writable(pa >> kPageShift) + off;
      if (endian == Endian::kLittle) {
        p[0] = static_cast<u8>(value);
        p[1] = static_cast<u8>(value >> 8);
      } else {
        p[0] = static_cast<u8>(value >> 8);
        p[1] = static_cast<u8>(value);
      }
      return;
    }
    write_split16(pa, value, endian);
  }

  u32 read32(u32 pa, Endian endian) const {
    check_range(pa, 4);
    const u32 off = pa & kPageMask;
    if (off + 4 <= kPageSize) {
      const u8* p = read_pages_[pa >> kPageShift] + off;
      if (endian == Endian::kLittle) {
        return static_cast<u32>(p[0]) | (static_cast<u32>(p[1]) << 8) |
               (static_cast<u32>(p[2]) << 16) | (static_cast<u32>(p[3]) << 24);
      }
      return (static_cast<u32>(p[0]) << 24) | (static_cast<u32>(p[1]) << 16) |
             (static_cast<u32>(p[2]) << 8) | static_cast<u32>(p[3]);
    }
    return read_split32(pa, endian);
  }
  void write32(u32 pa, u32 value, Endian endian) {
    check_range(pa, 4);
    mark_written(pa, 4);
    const u32 off = pa & kPageMask;
    if (off + 4 <= kPageSize) {
      u8* p = writable(pa >> kPageShift) + off;
      if (endian == Endian::kLittle) {
        p[0] = static_cast<u8>(value);
        p[1] = static_cast<u8>(value >> 8);
        p[2] = static_cast<u8>(value >> 16);
        p[3] = static_cast<u8>(value >> 24);
      } else {
        p[0] = static_cast<u8>(value >> 24);
        p[1] = static_cast<u8>(value >> 16);
        p[2] = static_cast<u8>(value >> 8);
        p[3] = static_cast<u8>(value);
      }
      return;
    }
    write_split32(pa, value, endian);
  }

  /// Bulk copy helpers for loading kernel images.
  void write_bytes(u32 pa, const u8* data, u32 len);
  void read_bytes(u32 pa, u8* out, u32 len) const;

  /// Flip a single bit of physical memory (the paper's error model).
  void flip_bit(u32 pa, u32 bit);

  /// Whole-memory snapshot into a shared immutable buffer.  The snapshot
  /// becomes the fast-restore baseline: restore() of this exact snapshot
  /// brings back only pages written since.  With COW enabled, every page
  /// is re-pointed at the snapshot (contents unchanged, so no version
  /// bumps) and private storage is released — taking the boot snapshot is
  /// what drops a machine's resident footprint to the shared image.
  SnapshotPtr snapshot_shared();

  /// Restore ("reboot").  Dirty-page fast path when `snap` is the current
  /// baseline; falls back to a full adoption (re-establishing the
  /// baseline) for any other snapshot.  Either way the memory ends
  /// bit-identical to the snapshot and every brought-back page's version
  /// is bumped (cached decodes of the dirtied bytes are stale).
  void restore(const SnapshotPtr& snap);

  /// Restore by unconditional full copy/adoption — the pre-optimization
  /// behavior, kept as a cross-check knob so campaigns can prove the fast
  /// path is invisible to results.
  void restore_full(const SnapshotPtr& snap);

  /// Legacy by-value snapshot / restore (tests and one-off tools).
  std::vector<u8> snapshot() const;
  void restore(const std::vector<u8>& snap);

  // --- restore observability (for the reboot benches) ---
  u64 restores() const { return restores_; }
  u64 restore_pages_copied() const { return restore_pages_copied_; }
  u32 last_restore_pages() const { return last_restore_pages_; }

 private:
  void check_range(u32 pa, u32 len) const {
    KFI_CHECK(pa + len >= pa && pa + len <= size_,
              "physical access out of range");
  }

  /// Bump the write version of every page [pa, pa+len) touches.  len is
  /// at most a few bytes on the hot paths, so first/last covers it.
  void mark_written(u32 pa, u32 len) {
    const u32 first = pa >> kPageShift;
    const u32 last = (pa + len - 1) >> kPageShift;
    ++page_version_[first];
    if (last != first) ++page_version_[last];
  }

  u32 page_bytes(u32 page) const {
    const u32 off = page << kPageShift;
    const u32 remain = size_ - off;
    return remain < kPageSize ? remain : kPageSize;
  }

  /// The page's private writable copy, materialized on first write.
  u8* writable(u32 page) {
    u8* p = write_pages_[page];
    return p != nullptr ? p : materialize(page);
  }
  u8* materialize(u32 page);

  /// Point every page at `snap`'s buffer (contents must already match or
  /// be superseded intentionally).  Releases private storage when asked —
  /// that is what makes worker memory sublinear in worker count.
  void adopt_all(const SnapshotPtr& snap, bool release_storage);

  // Cross-page slow paths for the multi-byte accessors.
  u16 read_split16(u32 pa, Endian endian) const;
  u32 read_split32(u32 pa, Endian endian) const;
  void write_split16(u32 pa, u16 value, Endian endian);
  void write_split32(u32 pa, u32 value, Endian endian);

  /// Adopt-or-copy every page from `snap` and re-sync the baseline to it.
  void full_copy(const SnapshotPtr& snap);

  u32 size_ = 0;
  bool cow_ = true;
  /// Per-page read source: private copy, shared snapshot page, or the
  /// all-zero page.  write_pages_[p] is non-null iff the page is private.
  std::vector<const u8*> read_pages_;
  std::vector<u8*> write_pages_;
  /// Private backing storage, retained across re-points so hot dirty
  /// pages don't re-allocate every reboot.
  std::vector<std::unique_ptr<u8[]>> storage_;
  std::vector<u64> page_version_;

  /// Baseline for the dirty-page fast path: the last snapshot this memory
  /// was known bit-identical to, and the page versions at that moment.
  SnapshotPtr baseline_;
  std::vector<u64> baseline_version_;

  u64 restores_ = 0;
  u64 restore_pages_copied_ = 0;
  u32 last_restore_pages_ = 0;
};

}  // namespace kfi::mem
