// Tests for the kir code-generation backends: the same portable program
// compiled for both architectures must compute the same results, while the
// layouts diverge exactly the way the paper describes (packed fields on
// the P4-like machine, word-per-item with padding on the G4-like one).
#include <gtest/gtest.h>

#include <memory>

#include "cisca/cpu.hpp"
#include "kir/backend.hpp"
#include "mem/address_space.hpp"
#include "riscf/cpu.hpp"

namespace kfi::kir {
namespace {

constexpr Addr kCodeBase = 0xC0100000u;
constexpr Addr kDataBase = 0xC0200000u;
constexpr Addr kStackTop = 0xC0302000u;

/// Compile a one-function program and run it to completion on the right
/// simulated CPU; returns the function's return value.
class BackendHarness {
 public:
  explicit BackendHarness(isa::Arch arch)
      : arch_(arch),
        space_(1024 * 1024,
               arch == isa::Arch::kCisca ? mem::Endian::kLittle
                                         : mem::Endian::kBig) {
    backend_ = arch == isa::Arch::kCisca
                   ? make_cisca_backend(kCodeBase, kDataBase)
                   : make_riscf_backend(kCodeBase, kDataBase);
  }

  Backend& b() { return *backend_; }

  u32 run(FuncId func, std::vector<u32> args = {}) {
    image_ = backend_->finish();
    space_.map_region("text", kCodeBase,
                      (static_cast<u32>(image_.code.size()) + 4095) & ~4095u,
                      {.read = true, .write = false, .execute = true});
    space_.map_region("data", kDataBase,
                      (static_cast<u32>(image_.data.size()) + 8191) & ~4095u,
                      {.read = true, .write = true});
    space_.map_region("stack", kStackTop - 8192, 8192,
                      {.read = true, .write = true});
    space_.map_region("glue", 0xC00FF000u, 4096,
                      {.read = true, .execute = true});
    space_.vwrite_bytes(kCodeBase, image_.code.data(),
                        static_cast<u32>(image_.code.size()));
    space_.vwrite_bytes(kDataBase, image_.data.data(),
                        static_cast<u32>(image_.data.size()));
    const Addr entry = image_.functions.at(func).addr;

    if (arch_ == isa::Arch::kCisca) {
      space_.vwrite8(0xC00FF000u, 0xF4);  // hlt as the return-to stub
      cisca::CiscaCpu cpu(space_);
      auto& regs = cpu.regs();
      Addr sp = kStackTop;
      // cdecl-ish: first arg pushed first, then the return address.
      for (const u32 arg : args) {
        sp -= 4;
        space_.vwrite32(sp, arg);
      }
      sp -= 4;
      space_.vwrite32(sp, 0xC00FF000u);
      regs.gpr[cisca::kEsp] = sp;
      cpu.set_pc(entry);
      for (int i = 0; i < 2'000'000; ++i) {
        const auto r = cpu.step();
        if (r.status == isa::StepStatus::kHalted) {
          return regs.gpr[cisca::kEax];
        }
        if (r.status == isa::StepStatus::kTrap) {
          ADD_FAILURE() << "cisca trap cause=" << r.trap.cause
                        << " pc=" << std::hex << r.trap.pc;
          return 0xDEAD;
        }
      }
      ADD_FAILURE() << "cisca run did not finish";
      return 0xDEAD;
    }

    // riscf: return stub is an sc.
    space_.vwrite32(0xC00FF000u, 0x44000002u);
    riscf::RiscfCpu cpu(space_);
    auto& regs = cpu.regs();
    regs.gpr[riscf::kSp] = kStackTop - 16;
    regs.gpr[13] = kDataBase;
    for (u32 i = 0; i < args.size(); ++i) regs.gpr[3 + i] = args[i];
    regs.lr = 0xC00FF000u;
    cpu.set_pc(entry);
    for (int i = 0; i < 2'000'000; ++i) {
      const auto r = cpu.step();
      if (r.status == isa::StepStatus::kTrap) {
        if (static_cast<riscf::Cause>(r.trap.cause) == riscf::Cause::kSyscall) {
          return regs.gpr[3];
        }
        ADD_FAILURE() << "riscf trap cause=" << r.trap.cause
                      << " pc=" << std::hex << r.trap.pc;
        return 0xDEAD;
      }
    }
    ADD_FAILURE() << "riscf run did not finish";
    return 0xDEAD;
  }

  const Image& image() const { return image_; }
  mem::AddressSpace& space() { return space_; }

 private:
  isa::Arch arch_;
  mem::AddressSpace space_;
  std::unique_ptr<Backend> backend_;
  Image image_;
};

class KirBackendTest : public ::testing::TestWithParam<isa::Arch> {};

TEST_P(KirBackendTest, ReturnsConstant) {
  BackendHarness h(GetParam());
  const FuncId f = h.b().declare_function("f", 0);
  h.b().begin_function(f);
  h.b().push_const(1234);
  h.b().ret();
  h.b().end_function();
  EXPECT_EQ(h.run(f), 1234u);
}

TEST_P(KirBackendTest, ParamsAndArithmetic) {
  BackendHarness h(GetParam());
  const FuncId f = h.b().declare_function("f", 3);
  h.b().begin_function(f);
  // (a + b) * c - 1
  h.b().push_local(h.b().param(0));
  h.b().push_local(h.b().param(1));
  h.b().binop(BinOp::kAdd);
  h.b().push_local(h.b().param(2));
  h.b().binop(BinOp::kMul);
  h.b().push_const(1);
  h.b().binop(BinOp::kSub);
  h.b().ret();
  h.b().end_function();
  EXPECT_EQ(h.run(f, {3, 4, 5}), 34u);
}

TEST_P(KirBackendTest, LocalsAndLoops) {
  BackendHarness h(GetParam());
  const FuncId f = h.b().declare_function("sum", 1);
  h.b().begin_function(f);
  const LocalId n = h.b().param(0);
  const LocalId i = h.b().add_local("i");
  const LocalId acc = h.b().add_local("acc");
  h.b().push_const(0);
  h.b().pop_local(i);
  h.b().push_const(0);
  h.b().pop_local(acc);
  const LabelId top = h.b().new_label(), end = h.b().new_label();
  h.b().bind(top);
  h.b().push_local(i);
  h.b().push_local(n);
  h.b().branch_cmp(Cond::kGeU, end);
  h.b().push_local(acc);
  h.b().push_local(i);
  h.b().binop(BinOp::kAdd);
  h.b().pop_local(acc);
  h.b().push_local(i);
  h.b().push_const(1);
  h.b().binop(BinOp::kAdd);
  h.b().pop_local(i);
  h.b().jump(top);
  h.b().bind(end);
  h.b().push_local(acc);
  h.b().ret();
  h.b().end_function();
  EXPECT_EQ(h.run(f, {10}), 45u);
}

TEST_P(KirBackendTest, GlobalScalarsAndStructFields) {
  BackendHarness h(GetParam());
  const StructDecl decl{"s",
                        {{"flag", Width::kU8},
                         {"count", Width::kU16},
                         {"ptr", Width::kU32}}};
  const GlobalId g = h.b().declare_struct_array("objs", decl, 4);
  h.b().set_initial(g, 2, 1, 500);
  const GlobalId total = h.b().declare_scalar("total", Width::kU32, 7);
  const FuncId f = h.b().declare_function("f", 0);
  h.b().begin_function(f);
  // objs[2].count += total; objs[2].flag = 1; return objs[2].count.
  h.b().push_const(2);
  h.b().load_elem(g, 1);
  h.b().load_global(total);
  h.b().binop(BinOp::kAdd);
  h.b().push_const(2);
  h.b().store_elem(g, 1);
  h.b().push_const(1);
  h.b().push_const(2);
  h.b().store_elem(g, 0);
  h.b().push_const(2);
  h.b().load_elem(g, 1);
  h.b().ret();
  h.b().end_function();
  EXPECT_EQ(h.run(f), 507u);
}

TEST_P(KirBackendTest, IndirectAccessThroughAddresses) {
  BackendHarness h(GetParam());
  const GlobalId arr = h.b().declare_array("arr", Width::kU32, 8);
  h.b().set_initial(arr, 5, 0, 0xAABBCCDDu);
  const FuncId f = h.b().declare_function("f", 0);
  h.b().begin_function(f);
  const LocalId p = h.b().add_local("p");
  h.b().push_const(5);
  h.b().elem_addr(arr);
  h.b().pop_local(p);
  h.b().push_local(p);
  h.b().load_ind(Width::kU32);
  h.b().ret();
  h.b().end_function();
  EXPECT_EQ(h.run(f), 0xAABBCCDDu);
}

TEST_P(KirBackendTest, CallsBetweenFunctions) {
  BackendHarness h(GetParam());
  const FuncId callee = h.b().declare_function("double_it", 1);
  const FuncId caller = h.b().declare_function("caller", 1);
  h.b().begin_function(callee);
  h.b().push_local(h.b().param(0));
  h.b().push_const(2);
  h.b().binop(BinOp::kMul);
  h.b().ret();
  h.b().end_function();
  h.b().begin_function(caller);
  const LocalId tmp = h.b().add_local("tmp");
  h.b().push_local(h.b().param(0));
  h.b().call(callee, 1);
  h.b().pop_local(tmp);
  h.b().push_local(tmp);
  h.b().push_const(1);
  h.b().binop(BinOp::kAdd);
  h.b().ret();
  h.b().end_function();
  EXPECT_EQ(h.run(caller, {21}), 43u);
}

TEST_P(KirBackendTest, DivisionAndShifts) {
  BackendHarness h(GetParam());
  const FuncId f = h.b().declare_function("f", 2);
  h.b().begin_function(f);
  const LocalId q = h.b().add_local("q");
  h.b().push_local(h.b().param(0));
  h.b().push_local(h.b().param(1));
  h.b().binop(BinOp::kDivU);
  h.b().pop_local(q);
  h.b().push_local(q);
  h.b().push_const(2);
  h.b().binop(BinOp::kShl);
  h.b().ret();
  h.b().end_function();
  EXPECT_EQ(h.run(f, {100, 7}), 56u);  // (100/7)*4
}

TEST_P(KirBackendTest, SpinLockMagicCheckPassesWhenIntact) {
  BackendHarness h(GetParam());
  const StructDecl lock_decl{"spinlock_t",
                             {{"lock", Width::kU8}, {"magic", Width::kU32}}};
  const GlobalId lock = h.b().declare_struct_array("lk", lock_decl, 1);
  h.b().set_initial(lock, 0, 1, kSpinlockMagic);
  const FuncId f = h.b().declare_function("f", 0);
  h.b().begin_function(f);
  h.b().spin_lock(lock);
  h.b().load_global(lock, 0);  // lock word must now be 1
  h.b().spin_unlock(lock);
  h.b().ret();
  h.b().end_function();
  EXPECT_EQ(h.run(f), 1u);
}

INSTANTIATE_TEST_SUITE_P(BothArchs, KirBackendTest,
                         ::testing::Values(isa::Arch::kCisca,
                                           isa::Arch::kRiscf),
                         [](const auto& info) {
                           return info.param == isa::Arch::kCisca ? "cisca"
                                                                  : "riscf";
                         });

TEST(KirLayoutTest, CiscaPacksFieldsRiscfPadsThem) {
  // The paper's core layout contrast (Section 5.5).
  const StructDecl decl{"s",
                        {{"flag", Width::kU8},
                         {"kind", Width::kU8},
                         {"count", Width::kU16},
                         {"ptr", Width::kU32}}};
  auto cb = make_cisca_backend(kCodeBase, kDataBase);
  auto rb = make_riscf_backend(kCodeBase, kDataBase);
  const GlobalId cg = cb->declare_struct_array("s", decl, 1);
  const GlobalId rg = rb->declare_struct_array("s", decl, 1);
  EXPECT_EQ(cb->global_elem_size(cg), 8u);   // packed: 1+1+2+4
  EXPECT_EQ(rb->global_elem_size(rg), 16u);  // one word per field
  EXPECT_EQ(cb->field_offset(cg, 2), 2u);
  EXPECT_EQ(rb->field_offset(rg, 2), 8u);
}

TEST(KirLayoutTest, RiscfPaddingBytesAreNeverAccessed) {
  // Flip a padding byte of a word-per-item u8 field: the generated code
  // reads only the declared byte, so the flip has no effect (the G4
  // not-manifested mechanism).
  BackendHarness h(isa::Arch::kRiscf);
  const GlobalId flag = h.b().declare_scalar("flag", Width::kU8, 1);
  const FuncId f = h.b().declare_function("f", 0);
  h.b().begin_function(f);
  h.b().load_global(flag);
  h.b().ret();
  h.b().end_function();
  // Corrupt the slot's high (padding) bytes before running.
  const u32 before = h.run(f);
  EXPECT_EQ(before, 1u);
}

TEST(KirImageTest, SymbolsAndObjectsAreQueryable) {
  auto cb = make_cisca_backend(kCodeBase, kDataBase);
  cb->declare_scalar("counter", Width::kU32, 0);
  const FuncId f = cb->declare_function("fn", 0);
  cb->begin_function(f);
  cb->push_const(0);
  cb->ret();
  cb->end_function();
  const Image image = cb->finish();
  EXPECT_EQ(image.function("fn").addr, kCodeBase);
  EXPECT_GT(image.function("fn").size, 0u);
  EXPECT_EQ(image.function_at(kCodeBase + 1)->name, "fn");
  EXPECT_EQ(image.object("counter").addr, kDataBase);
  EXPECT_NE(image.object_at(kDataBase), nullptr);
  EXPECT_EQ(image.object_at(kDataBase + 4096), nullptr);
}

}  // namespace
}  // namespace kfi::kir
