// Whole-image codegen integrity properties:
//   * every riscf text word decodes as a valid instruction;
//   * the cisca decode walk from each function entry lands exactly on the
//     function end (stream integrity — essential for the injection
//     target generator's instruction-boundary enumeration);
//   * function symbols tile the text section without overlap;
//   * data objects never overlap and stay inside their section windows;
//   * the two images implement the same function and object sets.
#include <gtest/gtest.h>

#include <set>

#include "cisca/decode.hpp"
#include "kernel/machine.hpp"
#include "kir/backend.hpp"
#include "riscf/insn.hpp"

namespace kfi::kir {
namespace {

TEST(CodegenIntegrityTest, EveryRiscfTextWordDecodes) {
  const Image image = kernel::build_kernel_image(isa::Arch::kRiscf);
  ASSERT_EQ(image.code.size() % 4, 0u);
  u32 bug_words = 0;
  for (u32 off = 0; off + 4 <= image.code.size(); off += 4) {
    const u32 word = (static_cast<u32>(image.code[off]) << 24) |
                     (static_cast<u32>(image.code[off + 1]) << 16) |
                     (static_cast<u32>(image.code[off + 2]) << 8) |
                     image.code[off + 3];
    if (word == 0) {
      // BUG() words are deliberately illegal; they must be unreachable on
      // fault-free paths but are legitimate text contents.
      ++bug_words;
      continue;
    }
    EXPECT_NE(riscf::decode(word).op, riscf::Op::kInvalid)
        << "offset " << std::hex << off << " word " << word;
  }
  EXPECT_GT(bug_words, 0u);  // the spinlock checks emit them
}

TEST(CodegenIntegrityTest, CiscaDecodeWalkTilesEveryFunction) {
  const Image image = kernel::build_kernel_image(isa::Arch::kCisca);
  for (const auto& fn : image.functions) {
    u32 off = fn.addr - image.code_base;
    const u32 end = off + fn.size;
    while (off < end) {
      cisca::FetchWindow w;
      w.pc = image.code_base + off;
      for (u32 k = 0; k < cisca::kMaxInsnBytes && off + k < image.code.size();
           ++k) {
        w.bytes[k] = image.code[off + k];
        w.valid = static_cast<u8>(k + 1);
      }
      const auto dec = cisca::decode(w);
      ASSERT_NE(dec.insn.op, cisca::Op::kInvalid)
          << fn.name << "+0x" << std::hex << (off - (fn.addr - image.code_base));
      off += dec.insn.length;
    }
    EXPECT_EQ(off, end) << fn.name << ": stream overruns the function end";
  }
}

class ImagePropertiesTest : public ::testing::TestWithParam<isa::Arch> {};

TEST_P(ImagePropertiesTest, FunctionsTileWithoutOverlap) {
  const Image image = kernel::build_kernel_image(GetParam());
  std::vector<std::pair<Addr, Addr>> ranges;
  for (const auto& fn : image.functions) {
    EXPECT_GT(fn.size, 0u) << fn.name;
    EXPECT_GE(fn.addr, image.code_base);
    EXPECT_LE(fn.addr + fn.size, image.code_base + image.code.size());
    ranges.emplace_back(fn.addr, fn.addr + fn.size);
  }
  std::sort(ranges.begin(), ranges.end());
  for (size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_LE(ranges[i - 1].second, ranges[i].first) << "overlap at " << i;
  }
}

TEST_P(ImagePropertiesTest, ObjectsRespectTheirWindows) {
  const Image image = kernel::build_kernel_image(GetParam());
  std::vector<std::pair<Addr, Addr>> ranges;
  for (const auto& obj : image.objects) {
    EXPECT_GT(obj.size(), 0u) << obj.name;
    if (obj.structural) {
      EXPECT_LE(obj.addr + obj.size(), image.data_base + kBulkDataOffset)
          << obj.name;
    } else {
      EXPECT_GE(obj.addr, image.data_base + kBulkDataOffset) << obj.name;
    }
    ranges.emplace_back(obj.addr, obj.addr + obj.size());
  }
  std::sort(ranges.begin(), ranges.end());
  for (size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_LE(ranges[i - 1].second, ranges[i].first);
  }
}

TEST_P(ImagePropertiesTest, FieldsStayInsideTheirElements) {
  const Image image = kernel::build_kernel_image(GetParam());
  for (const auto& obj : image.objects) {
    for (const auto& f : obj.fields) {
      EXPECT_LE(f.offset + f.storage_bytes, obj.elem_size)
          << obj.name << "." << f.name;
      EXPECT_LE(static_cast<u32>(f.width), f.storage_bytes);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothArchs, ImagePropertiesTest,
                         ::testing::Values(isa::Arch::kCisca,
                                           isa::Arch::kRiscf),
                         [](const auto& info) {
                           return info.param == isa::Arch::kCisca ? "cisca"
                                                                  : "riscf";
                         });

TEST(CodegenIntegrityTest, BothImagesImplementTheSameProgram) {
  const Image p4 = kernel::build_kernel_image(isa::Arch::kCisca);
  const Image g4 = kernel::build_kernel_image(isa::Arch::kRiscf);
  auto names = [](const auto& items) {
    std::set<std::string> out;
    for (const auto& item : items) out.insert(item.name);
    return out;
  };
  EXPECT_EQ(names(p4.functions), names(g4.functions));
  EXPECT_EQ(names(p4.objects), names(g4.objects));
  // The central size contrasts: G4 text and structural data are larger
  // (32-bit fixed instructions; word-per-item fields).
  EXPECT_GT(g4.code.size(), p4.code.size());
  const auto& p4_tasks = p4.object("task_structs");
  const auto& g4_tasks = g4.object("task_structs");
  EXPECT_GT(g4_tasks.elem_size, p4_tasks.elem_size);
}

}  // namespace
}  // namespace kfi::kir
