// Workload tests: each benchmark program must run clean on a fault-free
// machine (all checks pass), be deterministic for a seed, and detect
// deliberately corrupted outputs (the fail-silence instrumentation).
#include <gtest/gtest.h>

#include "kernel/layout.hpp"
#include "workload/profiler.hpp"
#include "workload/workload.hpp"

namespace kfi::workload {
namespace {

using kernel::EventKind;
using kernel::Machine;
using kernel::MachineOptions;

struct Combo {
  isa::Arch arch;
  const char* factory;
};

std::unique_ptr<Workload> make_by_name(const std::string& name) {
  if (name == "fileops") return make_fileops();
  if (name == "pipeloop") return make_pipe_loop();
  if (name == "syscallmix") return make_syscall_mix();
  if (name == "ctxswitch") return make_context_switch();
  if (name == "memhog") return make_mem_hog();
  return make_suite();
}

class WorkloadCleanRunTest
    : public ::testing::TestWithParam<std::tuple<isa::Arch, std::string>> {};

TEST_P(WorkloadCleanRunTest, RunsCleanAndValidates) {
  const auto& [arch, name] = GetParam();
  Machine machine(arch, MachineOptions{});
  auto wl = make_by_name(name);
  wl->reset(42);
  u32 issued = 0;
  while (auto req = wl->next(machine)) {
    const kernel::Event ev =
        machine.syscall(req->nr, req->a0, req->a1, req->a2);
    ASSERT_EQ(ev.kind, EventKind::kSyscallDone)
        << name << " crashed after " << issued << " syscalls";
    ASSERT_TRUE(wl->check(machine, ev.ret)) << name << " @" << issued;
    ++issued;
  }
  EXPECT_GT(issued, 50u);
  EXPECT_EQ(issued, wl->issued());
  EXPECT_TRUE(wl->final_check(machine));
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadCleanRunTest,
    ::testing::Combine(::testing::Values(isa::Arch::kCisca, isa::Arch::kRiscf),
                       ::testing::Values("fileops", "pipeloop", "syscallmix",
                                         "ctxswitch", "memhog", "suite")),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == isa::Arch::kCisca
                             ? "cisca_"
                             : "riscf_") +
             std::get<1>(info.param);
    });

TEST(WorkloadTest, DeterministicSyscallSequenceForSeed) {
  Machine machine(isa::Arch::kCisca, MachineOptions{});
  auto collect = [&machine](u64 seed) {
    machine.restore(machine.boot_snapshot());
    auto wl = make_suite();
    wl->reset(seed);
    std::vector<u32> nrs;
    while (auto req = wl->next(machine)) {
      const kernel::Event ev =
          machine.syscall(req->nr, req->a0, req->a1, req->a2);
      EXPECT_EQ(ev.kind, EventKind::kSyscallDone);
      wl->check(machine, ev.ret);
      nrs.push_back(static_cast<u32>(req->nr));
    }
    return nrs;
  };
  const auto a = collect(7);
  const auto b = collect(7);
  EXPECT_EQ(a, b);
}

TEST(WorkloadTest, FileopsDetectsCorruptedReadback) {
  // Corrupt a cached block between write and read-back: fileops must flag
  // the mismatch — this is the FSV detector.
  Machine machine(isa::Arch::kCisca, MachineOptions{});
  auto wl = make_fileops();
  wl->reset(3);
  bool detected = false;
  u32 issued = 0;
  while (auto req = wl->next(machine)) {
    const kernel::Event ev =
        machine.syscall(req->nr, req->a0, req->a1, req->a2);
    ASSERT_EQ(ev.kind, EventKind::kSyscallDone);
    if (req->nr == kernel::Syscall::kRead && issued > 3) {
      // Flip a byte of what was just read into the user buffer.
      const Addr buf = kernel::kUserBufBase + 0x1000;
      machine.space().vwrite8(buf, machine.space().vread8(buf) ^ 0x40);
    }
    if (!wl->check(machine, ev.ret)) {
      detected = true;
      break;
    }
    ++issued;
  }
  EXPECT_TRUE(detected);
}

TEST(WorkloadTest, PipeloopDetectsLostPackets) {
  // Drop a packet by stealing it from the rx ring: state_check must fail.
  Machine machine(isa::Arch::kRiscf, MachineOptions{});
  auto wl = make_pipe_loop();
  wl->reset(9);
  u32 steps = 0;
  while (auto req = wl->next(machine)) {
    const kernel::Event ev =
        machine.syscall(req->nr, req->a0, req->a1, req->a2);
    ASSERT_EQ(ev.kind, EventKind::kSyscallDone);
    wl->check(machine, ev.ret);
    if (++steps == 10) {
      // Steal: advance rx_tail past one queued packet, if any.
      const u32 head = machine.read_global("rx_head");
      const u32 tail = machine.read_global("rx_tail");
      if (head != tail) machine.write_global("rx_tail", tail + 1);
    }
  }
  // Either a check caught the reordering or the final state check fails.
  EXPECT_FALSE(wl->final_check(machine));
}

TEST(WorkloadTest, ProfilerSelectsHotFunctionsCoveringUsage) {
  Machine machine(isa::Arch::kCisca, MachineOptions{});
  auto wl = make_suite();
  const auto hot = profile_hot_functions(machine, *wl, 0.95, 1);
  ASSERT_FALSE(hot.empty());
  // Descending by usage, cumulative coverage reaches 95%.
  for (size_t i = 1; i < hot.size(); ++i) {
    EXPECT_LE(hot[i].entries, hot[i - 1].entries);
  }
  EXPECT_GE(hot.back().cumulative, 0.95);
  // The dispatcher is unavoidably the hottest function.
  EXPECT_EQ(hot.front().name, "sys_dispatch");
  // memcpy_user must rank among the hot functions (the paper's profiling
  // found data-movement dominating kernel usage).
  bool found_memcpy = false;
  for (const auto& fn : hot) found_memcpy |= fn.name == "memcpy_user";
  EXPECT_TRUE(found_memcpy);
}

TEST(WorkloadTest, ProfilerIsRepeatable) {
  Machine machine(isa::Arch::kRiscf, MachineOptions{});
  auto wl = make_suite();
  const auto a = profile_hot_functions(machine, *wl, 0.95, 1);
  const auto b = profile_hot_functions(machine, *wl, 0.95, 1);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].entries, b[i].entries);
  }
}

TEST(WorkloadTest, DiskPatternMatchesKernelImage) {
  Machine machine(isa::Arch::kCisca, MachineOptions{});
  const auto& disk = machine.image().object("disk_blocks");
  for (u32 block = 0; block < 4; ++block) {
    for (u32 i = 0; i < 8; ++i) {
      EXPECT_EQ(machine.space().vread8(disk.addr + block * 64 + i),
                disk_pattern(block, i));
    }
  }
}

}  // namespace
}  // namespace kfi::workload
