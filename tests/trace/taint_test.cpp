// TaintEngine dataflow semantics, exercised directly through the
// TraceSink hooks: seeding, per-instruction accumulator propagation,
// depth growth and saturation, silent-overwrite (clean-result) clearing,
// merge-union for partial register updates, glue data movement, and the
// summary digest.
#include <gtest/gtest.h>

#include "trace/taint.hpp"

namespace kfi::trace {
namespace {

// kNoSlot (sink.hpp) is out of range for the shadow array: hooks must
// ignore it, so it doubles as the "untainted PC" for fetches that should
// contribute nothing.

/// Advance one instruction with a clean PC and clean instruction bytes
/// (phys ranges far away from anything the tests seed).
void step(TaintEngine& e) {
  e.on_insn_fetch(kNoSlot, 0, 0xFFFF0000u, 4, 0, 0);
}

TEST(TaintEngineTest, SeedRegisterSetsDepthOne) {
  TaintEngine e;
  e.seed_register(5);
  EXPECT_EQ(e.reg_depth(5), 1u);
  EXPECT_EQ(e.tainted_regs(), 1u);
  const PropagationSummary s = e.finalize();
  EXPECT_TRUE(s.traced);
  EXPECT_TRUE(s.seeded);
  EXPECT_FALSE(s.used);
  EXPECT_TRUE(s.live_at_end);
  EXPECT_EQ(s.live_regs_at_end, 1u);
  EXPECT_EQ(s.first_use_latency, 0u);
}

TEST(TaintEngineTest, SeedOutOfRangeSlotIsIgnored) {
  TaintEngine e;
  e.seed_register(kNoSlot);
  EXPECT_EQ(e.tainted_regs(), 0u);
  EXPECT_FALSE(e.finalize().seeded);
}

TEST(TaintEngineTest, SeedMemoryMarksEachByte) {
  TaintEngine e;
  e.seed_memory(0xC0100, 0x100, 4);
  for (u32 i = 0; i < 4; ++i) EXPECT_EQ(e.mem_depth(0x100 + i), 1u);
  EXPECT_EQ(e.mem_depth(0x104), 0u);
  EXPECT_EQ(e.tainted_bytes(), 4u);
  const PropagationSummary s = e.finalize();
  EXPECT_TRUE(s.seeded);
  EXPECT_EQ(s.live_bytes_at_end, 4u);
}

TEST(TaintEngineTest, ReadThenWritePropagatesDepthPlusOne) {
  TaintEngine e;
  e.seed_register(3);
  step(e);
  e.on_reg_read(3);
  e.on_reg_write(4);
  EXPECT_EQ(e.reg_depth(3), 1u);  // source keeps its mark
  EXPECT_EQ(e.reg_depth(4), 2u);  // result is one hop deeper
  const PropagationSummary s = e.finalize();
  EXPECT_TRUE(s.used);
  EXPECT_EQ(s.seed_insn, 0u);
  EXPECT_EQ(s.first_use_insn, 1u);
  EXPECT_EQ(s.first_use_latency, 1u);
  EXPECT_EQ(s.tainted_reads, 1u);
  EXPECT_EQ(s.tainted_writes, 1u);
  EXPECT_EQ(s.tainted_regs_peak, 2u);
}

TEST(TaintEngineTest, CleanResultClearsShadowAndCountsSilentOverwrite) {
  TaintEngine e;
  e.seed_register(3);
  step(e);           // resets the accumulator: nothing tainted consumed
  e.on_reg_write(3); // mov reg3, <clean value>
  EXPECT_EQ(e.reg_depth(3), 0u);
  EXPECT_EQ(e.tainted_regs(), 0u);
  const PropagationSummary s = e.finalize();
  EXPECT_EQ(s.silent_overwrites, 1u);
  EXPECT_FALSE(s.used);  // the corrupted value was never consumed
  EXPECT_FALSE(s.live_at_end);
}

TEST(TaintEngineTest, MergeUnionsWithoutClearing) {
  TaintEngine e;
  e.seed_register(3);
  step(e);
  // Partial update from a clean source (e.g. one CR field): must not
  // erase the existing mark and must not count a silent overwrite.
  e.on_reg_merge(3);
  EXPECT_EQ(e.reg_depth(3), 1u);
  EXPECT_EQ(e.finalize().silent_overwrites, 0u);
  // Tainted partial update folds in at propagated depth.
  step(e);
  e.on_reg_read(3);
  e.on_reg_merge(7);
  EXPECT_EQ(e.reg_depth(7), 2u);
}

TEST(TaintEngineTest, MemoryPropagationAndSilentOverwrite) {
  TaintEngine e;
  e.seed_memory(0xC0200, 0x200, 4);
  step(e);
  e.on_mem_read(0xC0200, 0x200, 4);
  e.on_mem_write(0xC0300, 0x300, 4);  // store of a tainted-derived value
  EXPECT_EQ(e.mem_depth(0x300), 2u);
  EXPECT_EQ(e.mem_depth(0x303), 2u);
  step(e);
  e.on_mem_write(0xC0300, 0x300, 4);  // clean store over the tainted word
  EXPECT_EQ(e.mem_depth(0x300), 0u);
  const PropagationSummary s = e.finalize();
  EXPECT_EQ(s.silent_overwrites, 1u);  // one per overwriting store
  EXPECT_EQ(s.tainted_bytes_peak, 8u);
  EXPECT_EQ(s.live_bytes_at_end, 4u);  // the seeded word itself survives
}

TEST(TaintEngineTest, DepthSaturatesAt255) {
  TaintEngine e;
  e.seed_register(0);
  for (int i = 0; i < 300; ++i) {
    step(e);
    e.on_reg_read(0);
    e.on_reg_write(0);  // reg0 = f(reg0): one hop deeper each time
  }
  EXPECT_EQ(e.reg_depth(0), 255u);
  EXPECT_EQ(e.finalize().max_depth, 255u);
}

TEST(TaintEngineTest, CtxSaveRestoreMovesShadowWithoutUse) {
  TaintEngine e;
  e.seed_register(5);
  e.on_ctx_save(5, 0x400);     // glue spills the register
  e.on_ctx_restore(6, 0x400);  // glue reloads it elsewhere
  EXPECT_EQ(e.mem_depth(0x400), 1u);
  EXPECT_EQ(e.reg_depth(6), 1u);
  const PropagationSummary s = e.finalize();
  // Pure data movement: no use, no depth added.
  EXPECT_FALSE(s.used);
  EXPECT_EQ(s.tainted_reads, 0u);
  EXPECT_EQ(s.max_depth, 0u);
}

TEST(TaintEngineTest, GlueOverwritesCountAsSilent) {
  TaintEngine e;
  e.seed_register(2);
  e.seed_memory(0xC0500, 0x500, 4);
  e.on_glue_reg_set(2);       // glue writes a fresh clean value
  e.on_glue_mem_set(0x500, 4);
  EXPECT_EQ(e.reg_depth(2), 0u);
  EXPECT_EQ(e.mem_depth(0x500), 0u);
  EXPECT_EQ(e.finalize().silent_overwrites, 2u);
}

TEST(TaintEngineTest, GlueRegCopyMovesShadow) {
  TaintEngine e;
  e.seed_register(2);
  e.on_glue_reg_copy(9, 2);  // tainted -> clean: shadow follows
  EXPECT_EQ(e.reg_depth(9), 1u);
  e.on_glue_reg_copy(9, 11);  // clean -> tainted: silent overwrite
  EXPECT_EQ(e.reg_depth(9), 0u);
  EXPECT_EQ(e.finalize().silent_overwrites, 1u);
}

TEST(TaintEngineTest, TaintedPcCountsEveryFetch) {
  TaintEngine e;
  e.seed_register(0);  // slot 0 acting as the PC
  e.on_insn_fetch(0, 0xC1000, 0xFFFF0000u, 4, 0, 0);
  e.on_insn_fetch(0, 0xC1004, 0xFFFF0004u, 4, 0, 0);
  const PropagationSummary s = e.finalize();
  EXPECT_EQ(s.pc_tainted_insns, 2u);
  EXPECT_TRUE(s.used);
  EXPECT_EQ(s.first_use_insn, 1u);
}

TEST(TaintEngineTest, TaintedInstructionBytesAreConsumption) {
  TaintEngine e;
  e.seed_memory(0xC2000, 0x2000, 1);  // one corrupted code byte
  // Straddling fetch: second phys range holds the tainted byte.
  e.on_insn_fetch(kNoSlot, 0xC1FFC, 0x1FFC, 4, 0x2000, 2);
  e.on_reg_write(4);  // whatever the corrupted instruction produced
  EXPECT_EQ(e.reg_depth(4), 2u);
  const PropagationSummary s = e.finalize();
  EXPECT_TRUE(s.used);
  EXPECT_EQ(s.tainted_reads, 1u);
}

TEST(TaintEngineTest, BranchDecisionCountsOnlyWhenTaintConsumed) {
  TaintEngine e;
  e.seed_register(3);
  step(e);
  e.on_branch_decision();  // condition derived from clean state
  e.on_reg_read(3);
  e.on_branch_decision();  // condition derived from the tainted read
  EXPECT_EQ(e.finalize().tainted_branches, 1u);
}

TEST(TaintEngineTest, SyscallResultTaint) {
  TaintEngine e;
  e.seed_register(4);
  e.on_syscall_result(9);  // clean result register
  EXPECT_FALSE(e.finalize().syscall_result_tainted);
  e.on_syscall_result(4);  // tainted result crosses the kernel boundary
  const PropagationSummary s = e.finalize();
  EXPECT_TRUE(s.syscall_result_tainted);
  EXPECT_TRUE(s.used);
}

TEST(TaintEngineTest, PrivTransitionsCountOnlyWhileTaintIsLive) {
  TaintEngine e;
  e.on_priv_transition(PrivEvent::kSyscallEntry);  // nothing live yet
  e.seed_register(1);
  e.on_priv_transition(PrivEvent::kSyscallReturn);
  EXPECT_EQ(e.finalize().priv_transitions, 1u);
}

TEST(TaintEngineTest, ObjectClassifierRecordsCrossings) {
  TaintEngine e;
  // Object id = top nibble of the VA page, -1 below 0x10000.
  e.set_object_classifier([](Addr va) -> i32 {
    return va >= 0x10000 ? static_cast<i32>(va >> 16) : -1;
  });
  e.seed_memory(0x20000, 0x600, 4);  // seed lands in object 2
  step(e);
  e.on_mem_read(0x20000, 0x600, 4);
  e.on_mem_write(0x20008, 0x608, 4);  // still object 2: not a crossing
  e.on_mem_write(0x30000, 0x700, 4);  // object 3: crossing
  e.on_mem_write(0x0000F, 0x800, 4);  // unnamed (-1): not a crossing
  EXPECT_EQ(e.finalize().objects_crossed, 1u);
}

TEST(TaintEngineTest, ReseedBeforeFirstUseRestartsDormancyClock) {
  TaintEngine e;
  e.seed_register(3);
  step(e);
  e.on_reg_write(3);  // the mark is silently overwritten...
  for (int i = 0; i < 4; ++i) step(e);
  e.seed_register(3);  // ...and a deferred flip re-arms at insn 5
  step(e);
  e.on_reg_read(3);
  const PropagationSummary s = e.finalize();
  EXPECT_EQ(s.seed_insn, 5u);
  EXPECT_EQ(s.first_use_insn, 6u);
  EXPECT_EQ(s.first_use_latency, 1u);
}

TEST(TaintEngineTest, ResetClearsAllState) {
  TaintEngine e;
  e.seed_register(3);
  e.seed_memory(0xC0900, 0x900, 4);
  step(e);
  e.on_reg_read(3);
  e.on_reg_write(4);
  e.reset();
  EXPECT_EQ(e.tainted_regs(), 0u);
  EXPECT_EQ(e.tainted_bytes(), 0u);
  EXPECT_EQ(e.insns(), 0u);
  const PropagationSummary s = e.finalize();
  EXPECT_TRUE(s.traced);
  EXPECT_FALSE(s.seeded);
  EXPECT_FALSE(s.used);
  EXPECT_EQ(s.max_depth, 0u);
  EXPECT_EQ(s.tainted_reads, 0u);
  EXPECT_EQ(s.silent_overwrites, 0u);
  EXPECT_FALSE(s.live_at_end);
}

}  // namespace
}  // namespace kfi::trace
