// Superblock (multi-instruction trace) execution contract for cisca:
// dispatching a cached straight-line block through per-op handler pointers
// must be bit-identical to single-stepping — same register results, same
// cycle charges, same trap ordering — and a write into a cached block's
// page (an injected flip or the program's own store) must invalidate the
// block so the corrupted bytes re-decode.  Results are compared against a
// superblock-disabled CPU running the identical program.
#include <gtest/gtest.h>

#include "cisca/cpu.hpp"
#include "cisca/encode.hpp"
#include "mem/address_space.hpp"

namespace kfi::cisca {
namespace {

constexpr Addr kCode = 0x10000;

struct Rig {
  mem::AddressSpace space{256 * 1024, mem::Endian::kLittle};
  CiscaCpu cpu{space};

  explicit Rig(bool superblocks) {
    space.map_region("code", kCode, 4096,
                     {.read = true, .write = true, .execute = true});
    cpu.set_superblocks_enabled(superblocks);
  }

  void load(const std::vector<u8>& bytes) {
    space.vwrite_bytes(kCode, bytes.data(), static_cast<u32>(bytes.size()));
    cpu.set_pc(kCode);
  }

  /// Drive the CPU the way the machine loop does: block dispatches with
  /// unbounded limits, stopping at the first non-kOk status.
  isa::StepResult run(u32 max_blocks = 200) {
    for (u32 i = 0; i < max_blocks; ++i) {
      u64 consumed = 1;
      const isa::StepResult r = cpu.step_block({}, &consumed);
      if (r.status != isa::StepStatus::kOk) return r;
    }
    ADD_FAILURE() << "did not stop";
    return {};
  }
};

std::vector<u8> straight_line_program() {
  Asm a(kCode);
  a.mov_r_imm(kEax, 1);  // B8 imm32 at kCode + 0
  a.mov_r_imm(kEbx, 2);  // at kCode + 5
  a.mov_r_imm(kEcx, 3);  // at kCode + 10: imm byte at kCode + 11
  a.hlt();
  return a.finish();
}

TEST(CiscaSuperblockTest, InjectorFlipMidBlockIsReDecoded) {
  // The flip lands on the THIRD instruction of an already-cached block —
  // the block must be rebuilt, not just its first entry.
  Rig warm(true), cold(false);
  for (Rig* rig : {&warm, &cold}) {
    rig->load(straight_line_program());
    rig->run();
    ASSERT_EQ(rig->cpu.regs().gpr[kEcx], 3u);
    // The injector's path: flip bit 2 of the imm byte (3 -> 7).
    rig->space.vflip_bit(kCode + 11, 2);
    rig->cpu.set_pc(kCode);
    rig->run();
  }
  EXPECT_EQ(warm.cpu.regs().gpr[kEcx], 7u);
  EXPECT_EQ(warm.cpu.regs().gpr[kEcx], cold.cpu.regs().gpr[kEcx]);
  EXPECT_GE(warm.cpu.superblock_stats().invalidations, 1u);
  EXPECT_EQ(cold.cpu.superblock_stats().dispatches, 0u);
}

TEST(CiscaSuperblockTest, SelfModifyingStoreIsReDecoded) {
  // Pass 1 executes `mov eax, 1` (caching its block), patches its imm
  // byte to 7 with an ordinary store, and loops; pass 2 must execute the
  // patched instruction.
  Asm a(kCode);
  const auto start = a.new_label();
  const auto done = a.new_label();
  a.bind(start);
  a.mov_r_imm(kEax, 1);  // patched between passes
  a.alu_r_imm(Op::kCmp, kEbx, 0);
  a.jcc(kCondNE, done);
  a.mov_r_imm(kEbx, 1);
  a.mov_rm8_imm(MemOperand{.disp = static_cast<i32>(kCode + 1)}, 7);
  a.jmp(start);
  a.bind(done);
  a.hlt();
  const std::vector<u8> program = a.finish();

  Rig warm(true), cold(false);
  for (Rig* rig : {&warm, &cold}) {
    rig->load(program);
    rig->run();
  }
  EXPECT_EQ(warm.cpu.regs().gpr[kEax], 7u);
  EXPECT_EQ(warm.cpu.regs().gpr[kEax], cold.cpu.regs().gpr[kEax]);
  EXPECT_GE(warm.cpu.superblock_stats().invalidations, 1u);
}

TEST(CiscaSuperblockTest, UnmodifiedCodeHitsOnRedispatch) {
  Rig warm(true);
  warm.load(straight_line_program());
  warm.run();
  const auto first = warm.cpu.superblock_stats();
  EXPECT_GE(first.misses, 1u);
  warm.cpu.set_pc(kCode);
  warm.run();
  const auto second = warm.cpu.superblock_stats();
  EXPECT_EQ(second.misses, first.misses);  // re-dispatch came from the cache
  EXPECT_GT(second.hits, first.hits);
  EXPECT_EQ(second.invalidations, 0u);
  EXPECT_GT(second.mean_block_len(), 1.0);
}

TEST(CiscaSuperblockTest, BlockDispatchMatchesSingleSteppingInLockstep) {
  // Strongest equivalence check: after every block dispatch consuming k
  // iterations, k single steps on a superblock-free CPU must land in the
  // bit-identical register state at the same cycle count.
  Asm a(kCode);
  const auto start = a.new_label();
  const auto done = a.new_label();
  a.mov_r_imm(kEax, 0);
  a.mov_r_imm(kEcx, 5);
  a.bind(start);
  a.alu_r_imm(Op::kCmp, kEcx, 0);
  a.jcc(kCondE, done);
  a.alu_r_imm(Op::kAdd, kEax, 7);
  a.alu_r_imm(Op::kSub, kEcx, 1);
  a.jmp(start);
  a.bind(done);
  a.hlt();
  const std::vector<u8> program = a.finish();

  Rig blocked(true), stepped(false);
  blocked.load(program);
  stepped.load(program);
  for (u32 guard = 0; guard < 200; ++guard) {
    u64 consumed = 1;
    const isa::StepResult rb = blocked.cpu.step_block({}, &consumed);
    isa::StepResult rs;
    for (u64 k = 0; k < consumed; ++k) rs = stepped.cpu.step();
    ASSERT_EQ(rb.status, rs.status) << "dispatch " << guard;
    ASSERT_EQ(blocked.cpu.snapshot().words, stepped.cpu.snapshot().words)
        << "dispatch " << guard;
    ASSERT_EQ(blocked.cpu.cycles(), stepped.cpu.cycles())
        << "dispatch " << guard;
    if (rb.status != isa::StepStatus::kOk) return;
  }
  FAIL() << "did not stop";
}

TEST(CiscaSuperblockTest, MaxInsnsLimitBoundsTheDispatch) {
  // A step budget of 1 per dispatch degenerates to single-stepping.
  Rig rig(true);
  rig.load(straight_line_program());
  isa::BlockLimits limits;
  limits.max_insns = 1;
  for (u32 i = 0; i < 3; ++i) {
    u64 consumed = 0;
    ASSERT_EQ(rig.cpu.step_block(limits, &consumed).status,
              isa::StepStatus::kOk);
    EXPECT_EQ(consumed, 1u);
  }
  EXPECT_EQ(rig.cpu.regs().gpr[kEcx], 3u);
}

TEST(CiscaSuperblockTest, CycleBoundStopsMidBlock) {
  // The first instruction of a dispatch always executes (the machine loop
  // already passed its cycle checks); the bound stops the block before
  // the next one, exactly like the loop would have.
  Rig rig(true);
  rig.load(straight_line_program());
  isa::BlockLimits limits;
  limits.cycle_bound = rig.cpu.cycles() + 1;
  u64 consumed = 0;
  ASSERT_EQ(rig.cpu.step_block(limits, &consumed).status,
            isa::StepStatus::kOk);
  EXPECT_EQ(consumed, 1u);
  EXPECT_EQ(rig.cpu.regs().gpr[kEax], 1u);
  EXPECT_EQ(rig.cpu.regs().gpr[kEbx], 0u);  // second insn did not run
}

}  // namespace
}  // namespace kfi::cisca
