// Decoder/encoder tests for the cisca (P4-like) ISA, including the
// encode->decode round-trip properties every injection experiment depends
// on, and the variable-length re-alignment mechanism of the paper's
// Figure 14.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "cisca/decode.hpp"
#include "cisca/encode.hpp"
#include "common/rng.hpp"

namespace kfi::cisca {
namespace {

FetchWindow window_from(const std::vector<u8>& bytes, u32 offset = 0) {
  FetchWindow w;
  w.pc = 0x1000 + offset;
  for (u32 i = 0; i < kMaxInsnBytes && offset + i < bytes.size(); ++i) {
    w.bytes[i] = bytes[offset + i];
    w.valid = static_cast<u8>(i + 1);
  }
  return w;
}

Insn decode_one(const std::vector<u8>& bytes) {
  const DecodeResult r = decode(window_from(bytes));
  EXPECT_FALSE(r.fetch_fault);
  return r.insn;
}

MemOperand ebp_disp(i32 disp) {
  MemOperand m;
  m.base = kEbp;
  m.disp = disp;
  return m;
}

TEST(CiscaDecodeTest, MovRegImm) {
  Asm a(0x1000);
  a.mov_r_imm(kEax, 0xDEADBEEF);
  const Insn insn = decode_one(a.finish());
  EXPECT_EQ(insn.op, Op::kMov);
  EXPECT_EQ(insn.length, 5);
  EXPECT_EQ(insn.dst.reg, kEax);
  EXPECT_EQ(static_cast<u32>(insn.src.imm), 0xDEADBEEFu);
}

TEST(CiscaDecodeTest, PaperFigure7Epilogue) {
  // lea -12(%ebp),%esp; pop ebx; pop esi; pop edi; pop ebp; ret — the
  // exact gcc epilogue shown in the paper's Figure 7 original code.
  Asm a(0x1000);
  a.lea(kEsp, ebp_disp(-12));
  a.pop_r(kEbx);
  a.pop_r(kEsi);
  a.pop_r(kEdi);
  a.pop_r(kEbp);
  a.ret();
  const std::vector<u8> bytes = a.finish();
  // Byte-for-byte what the paper shows: 8d 65 f4 5b 5e 5f 5d c3.
  const std::vector<u8> expected = {0x8D, 0x65, 0xF4, 0x5B,
                                    0x5E, 0x5F, 0x5D, 0xC3};
  EXPECT_EQ(bytes, expected);
}

TEST(CiscaDecodeTest, PaperFigure7Realignment) {
  // The paper's stack-overflow example: one bit flip in the lea's ModRM
  // (65 -> 64) turns "lea -12(%ebp),%esp; pop %ebx" into the single
  // instruction "lea 0x5b(%esp,%esi,8),%esp" — consuming the pop.
  std::vector<u8> bytes = {0x8D, 0x65, 0xF4, 0x5B, 0x5E, 0x5F, 0x5D, 0xC3};
  bytes[1] ^= 0x01;  // 0x65 -> 0x64
  const Insn insn = decode_one(bytes);
  EXPECT_EQ(insn.op, Op::kLea);
  EXPECT_EQ(insn.length, 4);  // swallowed the pop ebx byte
  EXPECT_EQ(insn.dst.reg, kEsp);
  EXPECT_EQ(insn.src.mem.base, kEsp);
  EXPECT_EQ(insn.src.mem.index, kEsi);
  EXPECT_EQ(insn.src.mem.scale, 8);
  EXPECT_EQ(insn.src.mem.disp, 0x5B);
  // The stream re-aligns: the next instruction is now pop %esi.
  const DecodeResult next = decode(window_from(bytes, 4));
  EXPECT_EQ(next.insn.op, Op::kPop);
  EXPECT_EQ(next.insn.dst.reg, kEsi);
}

TEST(CiscaDecodeTest, SegmentOverridePrefix) {
  Asm a(0x1000);
  MemOperand m;
  m.seg = SegOverride::kFs;
  m.disp = 0x10;
  a.inc_rm(m);
  const Insn insn = decode_one(a.finish());
  EXPECT_EQ(insn.op, Op::kInc);
  EXPECT_EQ(insn.dst.mem.seg, SegOverride::kFs);
}

TEST(CiscaDecodeTest, Ud2DecodesAsItself) {
  const Insn insn = decode_one({0x0F, 0x0B});
  EXPECT_EQ(insn.op, Op::kUd2);
  EXPECT_EQ(insn.length, 2);
}

TEST(CiscaDecodeTest, UndefinedBytesAreInvalid) {
  // The residual undefined encodings of real IA-32 (segment push/pop and
  // a few reserved bytes).
  for (const u8 b : {0x06, 0x07, 0x0E, 0x16, 0x17, 0x1E, 0x1F}) {
    const Insn insn = decode_one({b, 0x00, 0x00});
    EXPECT_EQ(insn.op, Op::kInvalid) << "byte " << static_cast<int>(b);
  }
}

TEST(CiscaDecodeTest, StringOpsAndPrefixes) {
  // rep movsd: F3 A5.
  const Insn movs = decode_one({0xF3, 0xA5});
  EXPECT_EQ(movs.op, Op::kMovs);
  EXPECT_TRUE(movs.rep);
  EXPECT_EQ(movs.width, 4);
  // repne scasb: F2 AE.
  const Insn scas = decode_one({0xF2, 0xAE});
  EXPECT_EQ(scas.op, Op::kScas);
  EXPECT_TRUE(scas.repne);
  EXPECT_EQ(scas.width, 1);
  // 16-bit ALU via the operand-size prefix: 66 01 D8 = add ax, bx.
  const Insn add16 = decode_one({0x66, 0x01, 0xD8});
  EXPECT_EQ(add16.op, Op::kAdd);
  EXPECT_EQ(add16.width, 2);
  EXPECT_EQ(add16.length, 3);
}

TEST(CiscaDecodeTest, FetchFaultAtWindowEnd) {
  // A 5-byte instruction with only 2 readable bytes: the fetch faults at
  // the first unreadable byte.
  FetchWindow w;
  w.pc = 0x1FFE;
  w.bytes[0] = 0xB8;  // mov eax, imm32 (needs 4 more bytes)
  w.bytes[1] = 0x11;
  w.valid = 2;
  const DecodeResult r = decode(w);
  EXPECT_TRUE(r.fetch_fault);
  EXPECT_EQ(r.fault_addr, 0x2000u);
}

TEST(CiscaDecodeTest, MostByteValuesBeginValidInstructions) {
  // The load-bearing density property (paper Section 5.3): the opcode map
  // must be dense enough that random bytes usually decode as valid
  // instructions, like real IA-32.
  u32 valid = 0;
  Rng rng(99);
  const u32 kTrials = 2000;
  for (u32 t = 0; t < kTrials; ++t) {
    std::vector<u8> bytes(kMaxInsnBytes);
    for (auto& b : bytes) b = static_cast<u8>(rng.next_u32());
    const DecodeResult r = decode(window_from(bytes));
    if (!r.fetch_fault && r.insn.op != Op::kInvalid) ++valid;
  }
  EXPECT_GT(static_cast<double>(valid) / kTrials, 0.70);
}

struct RoundTrip {
  std::string name;
  std::function<void(Asm&)> emit;
  Op expected_op;
  u8 expected_len;
};

class CiscaRoundTripTest : public ::testing::TestWithParam<RoundTrip> {};

TEST_P(CiscaRoundTripTest, EncodeDecodeRoundTrips) {
  Asm a(0x1000);
  GetParam().emit(a);
  const Insn insn = decode_one(a.finish());
  EXPECT_EQ(insn.op, GetParam().expected_op);
  EXPECT_EQ(insn.length, GetParam().expected_len);
}

INSTANTIATE_TEST_SUITE_P(
    Encodings, CiscaRoundTripTest,
    ::testing::Values(
        RoundTrip{"add_rr", [](Asm& a) { a.alu_rr(Op::kAdd, kEax, kEbx); },
                  Op::kAdd, 2},
        RoundTrip{"sub_imm8", [](Asm& a) { a.alu_r_imm(Op::kSub, kEsp, 8); },
                  Op::kSub, 3},
        RoundTrip{"cmp_imm32",
                  [](Asm& a) { a.alu_r_imm(Op::kCmp, kEcx, 0x12345); },
                  Op::kCmp, 6},
        RoundTrip{"xor_rr", [](Asm& a) { a.alu_rr(Op::kXor, kEdx, kEdx); },
                  Op::kXor, 2},
        RoundTrip{"push", [](Asm& a) { a.push_r(kEbp); }, Op::kPush, 1},
        RoundTrip{"pop", [](Asm& a) { a.pop_r(kEdi); }, Op::kPop, 1},
        RoundTrip{"push_imm8", [](Asm& a) { a.push_imm(5); }, Op::kPush, 2},
        RoundTrip{"inc", [](Asm& a) { a.inc_r(kEsi); }, Op::kInc, 1},
        RoundTrip{"dec", [](Asm& a) { a.dec_r(kEax); }, Op::kDec, 1},
        RoundTrip{"nop", [](Asm& a) { a.nop(); }, Op::kNop, 1},
        RoundTrip{"ret", [](Asm& a) { a.ret(); }, Op::kRet, 1},
        RoundTrip{"leave", [](Asm& a) { a.leave(); }, Op::kLeave, 1},
        RoundTrip{"hlt", [](Asm& a) { a.hlt(); }, Op::kHlt, 1},
        RoundTrip{"int80", [](Asm& a) { a.int_(0x80); }, Op::kInt, 2},
        RoundTrip{"iret", [](Asm& a) { a.iret(); }, Op::kIret, 1},
        RoundTrip{"cdq", [](Asm& a) { a.cdq(); }, Op::kCdq, 1},
        RoundTrip{"div", [](Asm& a) { a.div_r(kEcx); }, Op::kDiv, 2},
        RoundTrip{"imul_rr", [](Asm& a) { a.imul_rr(kEax, kEbx); },
                  Op::kImul, 3},
        RoundTrip{"shl_imm", [](Asm& a) { a.shift_r_imm(Op::kShl, kEax, 4); },
                  Op::kShl, 3},
        RoundTrip{"movzx8",
                  [](Asm& a) { a.movzx_r_rm8(kEax, ebp_disp(-4)); },
                  Op::kMovzx, 4},
        RoundTrip{"mov16_store",
                  [](Asm& a) { a.mov_rm_r16(ebp_disp(-8), kEcx); },
                  Op::kMov, 4},
        RoundTrip{"xchg", [](Asm& a) { a.xchg_rr(kEbx, kEcx); },
                  Op::kXchg, 2},
        RoundTrip{"bound", [](Asm& a) { a.bound(kEax, ebp_disp(-16)); },
                  Op::kBound, 3},
        RoundTrip{"mov_cr", [](Asm& a) { a.mov_to_cr(0, kEax); },
                  Op::kMovToCr, 3},
        RoundTrip{"mov_seg", [](Asm& a) { a.mov_to_seg(false, kEax); },
                  Op::kMovToSeg, 2}),
    [](const auto& info) { return info.param.name; });

TEST(CiscaDecodeTest, BranchFixupsResolve) {
  Asm a(0x1000);
  const auto loop = a.new_label();
  a.bind(loop);
  a.dec_r(kEcx);
  a.jcc(kCondNE, loop);
  const std::vector<u8> bytes = a.finish();
  const DecodeResult r = decode(window_from(bytes, 1));
  EXPECT_EQ(r.insn.op, Op::kJcc);
  EXPECT_EQ(r.insn.cond, kCondNE);
  // target = after(1 + 6) + rel = offset 0 -> rel = -7.
  EXPECT_EQ(r.insn.rel, -7);
}

TEST(CiscaDecodeTest, DisassemblyMentionsOperands) {
  Asm a(0x1000);
  a.mov_r_rm(kEax, ebp_disp(-32));
  const Insn insn = decode_one(a.finish());
  const std::string s = insn.to_string();
  EXPECT_NE(s.find("mov"), std::string::npos);
  EXPECT_NE(s.find("%ebp"), std::string::npos);
  EXPECT_NE(s.find("%eax"), std::string::npos);
}

TEST(CiscaDecodeTest, SibAddressingRoundTrips) {
  Asm a(0x1000);
  MemOperand m;
  m.base = MemOperand::kNoReg;
  m.index = kEsi;
  m.scale = 8;
  m.disp = 0x5B;
  a.lea(kEsp, m);
  const Insn insn = decode_one(a.finish());
  EXPECT_EQ(insn.op, Op::kLea);
  EXPECT_EQ(insn.src.mem.index, kEsi);
  EXPECT_EQ(insn.src.mem.scale, 8);
  EXPECT_EQ(insn.src.mem.disp, 0x5B);
}

}  // namespace
}  // namespace kfi::cisca
