// Functional-unit classification of cisca instructions, checked against
// hand-assembled encodings run through the real decoder — the same path
// the target generator uses to classify opclass-targeted code faults.
// Also proves the predecode cache cannot serve a stale class: corrupting
// a cached instruction so it migrates between classes re-decodes it.
#include <gtest/gtest.h>

#include "cisca/cpu.hpp"
#include "cisca/decode.hpp"
#include "mem/address_space.hpp"

namespace kfi::cisca {
namespace {

/// Decode raw bytes as a single instruction.
Insn decode_bytes(std::initializer_list<u8> bytes) {
  FetchWindow w;
  w.pc = 0x1000;
  u8 i = 0;
  for (const u8 b : bytes) {
    w.bytes[i] = b;
    w.valid = ++i;
  }
  return decode(w).insn;
}

struct ClassedEncoding {
  std::initializer_list<u8> bytes;
  Op op;
  isa::OpClass cls;
};

TEST(CiscaOpClassTest, HandDecodedEncodingsClassify) {
  const ClassedEncoding cases[] = {
      // ALU: arithmetic, logic, shifts.
      {{0x01, 0xD8}, Op::kAdd, isa::OpClass::kAlu},        // add eax, ebx
      {{0x31, 0xC9}, Op::kXor, isa::OpClass::kAlu},        // xor ecx, ecx
      {{0x39, 0xC3}, Op::kCmp, isa::OpClass::kAlu},        // cmp ebx, eax
      {{0x40}, Op::kInc, isa::OpClass::kAlu},              // inc eax
      {{0xC1, 0xE0, 0x04}, Op::kShl, isa::OpClass::kAlu},  // shl eax, 4
      {{0x8D, 0x40, 0x04}, Op::kLea, isa::OpClass::kAlu},  // lea eax,4(eax)
      // Load/store: data movement, stack traffic, string ops.
      {{0xB8, 0x01, 0x00, 0x00, 0x00}, Op::kMov,
       isa::OpClass::kLoadStore},                          // mov eax, 1
      {{0x8B, 0x03}, Op::kMov, isa::OpClass::kLoadStore},  // mov eax,(ebx)
      {{0x55}, Op::kPush, isa::OpClass::kLoadStore},       // push ebp
      {{0x5D}, Op::kPop, isa::OpClass::kLoadStore},        // pop ebp
      {{0xA5}, Op::kMovs, isa::OpClass::kLoadStore},       // movsd
      {{0xC9}, Op::kLeave, isa::OpClass::kLoadStore},      // leave
      // Branch: control transfers.
      {{0xEB, 0xFE}, Op::kJmp, isa::OpClass::kBranch},     // jmp .-0
      {{0x74, 0x02}, Op::kJcc, isa::OpClass::kBranch},     // je +2
      {{0xE8, 0x00, 0x00, 0x00, 0x00}, Op::kCall,
       isa::OpClass::kBranch},                             // call +0
      {{0xC3}, Op::kRet, isa::OpClass::kBranch},           // ret
      // System: privileged state, traps, I/O.
      {{0xF4}, Op::kHlt, isa::OpClass::kSystem},           // hlt
      {{0xCD, 0x80}, Op::kInt, isa::OpClass::kSystem},     // int 0x80
      {{0xFA}, Op::kCli, isa::OpClass::kSystem},           // cli
      {{0x0F, 0x0B}, Op::kUd2, isa::OpClass::kSystem},     // ud2
      // Other: padding and undecodable bytes.
      {{0x90}, Op::kNop, isa::OpClass::kOther},            // nop
  };
  for (const auto& c : cases) {
    const Insn insn = decode_bytes(c.bytes);
    EXPECT_EQ(insn.op, c.op) << insn.to_string();
    EXPECT_EQ(opclass(insn.op), c.cls) << insn.to_string();
  }
}

TEST(CiscaOpClassTest, EveryOpHasAClassBelowNumClasses) {
  for (u32 raw = 0; raw <= static_cast<u32>(Op::kFwait); ++raw) {
    const auto cls = opclass(static_cast<Op>(raw));
    EXPECT_LT(static_cast<u32>(cls),
              static_cast<u32>(isa::OpClass::kNumClasses));
  }
}

TEST(CiscaOpClassTest, CorruptedCachedInsnMigratesClassAndReDecodes) {
  // `mov eax, imm32` (B8, load/store class) with bit 7 of the opcode
  // flipped becomes `cmp r/m8, r8` (38, ALU class).  Once the mov has
  // executed it sits in the predecode cache tagged with its old bytes;
  // the injector's flip must invalidate it, or an opclass-targeted
  // campaign would keep attributing outcomes to the stale class.
  constexpr Addr kCode = 0x10000;
  mem::AddressSpace space{64 * 1024, mem::Endian::kLittle};
  CiscaCpu cpu{space};
  cpu.set_decode_cache_enabled(true);
  space.map_region("code", kCode, 4096,
                   {.read = true, .write = true, .execute = true});
  const u8 program[] = {0xB8, 0x01, 0x00, 0x00, 0x00,  // mov eax, 1
                        0xF4};                         // hlt
  space.vwrite_bytes(kCode, program, sizeof(program));
  cpu.set_pc(kCode);
  for (int i = 0; i < 8 && cpu.step().status == isa::StepStatus::kOk; ++i) {
  }
  ASSERT_EQ(cpu.regs().gpr[kEax], 1u);

  space.vflip_bit(kCode, 7);  // B8 -> 38
  FetchWindow w;
  w.pc = kCode;
  for (u8 k = 0; k < kMaxInsnBytes; ++k) {
    w.bytes[k] = space.vread8(kCode + k);
    w.valid = static_cast<u8>(k + 1);
  }
  const Insn corrupted = decode(w).insn;
  EXPECT_EQ(corrupted.op, Op::kCmp);
  EXPECT_EQ(opclass(corrupted.op), isa::OpClass::kAlu);

  // Re-execution must go through the corrupted bytes, not the cache.
  cpu.set_pc(kCode);
  cpu.regs().gpr[kEax] = 0;
  for (int i = 0; i < 8 && cpu.step().status == isa::StepStatus::kOk; ++i) {
  }
  EXPECT_EQ(cpu.regs().gpr[kEax], 0u);  // the mov is gone
  EXPECT_GE(cpu.decode_cache_stats().invalidations, 1u);
}

}  // namespace
}  // namespace kfi::cisca
