// Invalidation contract of the cisca predecoded-instruction cache: once an
// instruction has been executed (and therefore cached), corrupting its
// bytes — via the injector's bit-flip path or via a store executed by the
// simulated program itself — must make the next execution re-decode.  Each
// scenario runs the identical program on a cold-cache (cache disabled) CPU
// and asserts bit-identical architectural results, plus cache counters
// proving the warm CPU actually hit and then invalidated.
#include <gtest/gtest.h>

#include "cisca/cpu.hpp"
#include "cisca/encode.hpp"
#include "mem/address_space.hpp"

namespace kfi::cisca {
namespace {

constexpr Addr kCode = 0x10000;

/// One CPU over its own writable+executable code page (2004-era MMUs had
/// no NX, and self-modifying code is exactly what this cache must survive).
struct Rig {
  mem::AddressSpace space{256 * 1024, mem::Endian::kLittle};
  CiscaCpu cpu{space};

  explicit Rig(bool cache) {
    space.map_region("code", kCode, 4096,
                     {.read = true, .write = true, .execute = true});
    cpu.set_decode_cache_enabled(cache);
  }

  void load(const std::vector<u8>& bytes) {
    space.vwrite_bytes(kCode, bytes.data(), static_cast<u32>(bytes.size()));
    cpu.set_pc(kCode);
  }

  void run(u32 max_steps = 100) {
    for (u32 i = 0; i < max_steps; ++i) {
      if (cpu.step().status != isa::StepStatus::kOk) return;
    }
    ADD_FAILURE() << "did not stop";
  }
};

std::vector<u8> immediate_load_program() {
  Asm a(kCode);
  a.mov_r_imm(kEax, 1);  // B8 imm32: imm byte lives at kCode + 1
  a.hlt();
  return a.finish();
}

TEST(CiscaDecodeCacheTest, InjectorFlipInCachedCodeIsReDecoded) {
  Rig warm(true), cold(false);
  for (Rig* rig : {&warm, &cold}) {
    rig->load(immediate_load_program());
    rig->run();
    ASSERT_EQ(rig->cpu.regs().gpr[kEax], 1u);
    // The injector's path: flip bit 1 of the imm byte (1 -> 3).
    rig->space.vflip_bit(kCode + 1, 1);
    rig->cpu.set_pc(kCode);
    rig->run();
  }
  EXPECT_EQ(warm.cpu.regs().gpr[kEax], 3u);
  EXPECT_EQ(warm.cpu.regs().gpr[kEax], cold.cpu.regs().gpr[kEax]);
  const auto stats = warm.cpu.decode_cache_stats();
  EXPECT_GE(stats.invalidations, 1u);  // the flipped entry was caught stale
  EXPECT_EQ(cold.cpu.decode_cache_stats().hits, 0u);
}

TEST(CiscaDecodeCacheTest, SelfModifyingStoreIsReDecoded) {
  // Pass 1 executes `mov eax, 1` (caching it), patches its imm byte to 7
  // with an ordinary store, and loops; pass 2 must execute the patched
  // instruction.
  Asm a(kCode);
  const auto start = a.new_label();
  const auto done = a.new_label();
  a.bind(start);
  a.mov_r_imm(kEax, 1);  // patched between passes
  a.alu_r_imm(Op::kCmp, kEbx, 0);
  a.jcc(kCondNE, done);
  a.mov_r_imm(kEbx, 1);
  a.mov_rm8_imm(MemOperand{.disp = static_cast<i32>(kCode + 1)}, 7);
  a.jmp(start);
  a.bind(done);
  a.hlt();
  const std::vector<u8> program = a.finish();

  Rig warm(true), cold(false);
  for (Rig* rig : {&warm, &cold}) {
    rig->load(program);
    rig->run();
  }
  EXPECT_EQ(warm.cpu.regs().gpr[kEax], 7u);
  EXPECT_EQ(warm.cpu.regs().gpr[kEax], cold.cpu.regs().gpr[kEax]);
  const auto stats = warm.cpu.decode_cache_stats();
  EXPECT_GE(stats.invalidations, 1u);
}

TEST(CiscaDecodeCacheTest, UnmodifiedCodeHitsOnReExecution) {
  Rig warm(true);
  warm.load(immediate_load_program());
  warm.run();
  const auto first = warm.cpu.decode_cache_stats();
  warm.cpu.set_pc(kCode);
  warm.run();
  const auto second = warm.cpu.decode_cache_stats();
  EXPECT_EQ(second.misses, first.misses);  // everything came from the cache
  EXPECT_GT(second.hits, first.hits);
  EXPECT_EQ(second.invalidations, 0u);
}

TEST(CiscaDecodeCacheTest, CacheToggleReportsState) {
  Rig warm(true), cold(false);
  EXPECT_TRUE(warm.cpu.decode_cache_enabled());
  EXPECT_FALSE(cold.cpu.decode_cache_enabled());
}

}  // namespace
}  // namespace kfi::cisca
