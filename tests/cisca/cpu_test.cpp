// Execution-semantics tests for the cisca (P4-like) CPU: arithmetic and
// flags, stack discipline, control flow, exceptions (the Table 3 crash
// categories), segment checks, and the snapshot/restore contract.
#include <gtest/gtest.h>

#include "cisca/cpu.hpp"
#include "common/bits.hpp"
#include "cisca/encode.hpp"
#include "mem/address_space.hpp"

namespace kfi::cisca {
namespace {

constexpr Addr kCode = 0x10000;
constexpr Addr kData = 0x20000;
constexpr Addr kStackTop = 0x31000;

class CiscaCpuTest : public ::testing::Test {
 protected:
  CiscaCpuTest() : space_(256 * 1024, mem::Endian::kLittle), cpu_(space_) {
    space_.map_region("code", kCode, 4096,
                      {.read = true, .write = false, .execute = true});
    space_.map_region("data", kData, 4096, {.read = true, .write = true});
    space_.map_region("stack", kStackTop - 4096, 4096,
                      {.read = true, .write = true});
    cpu_.regs().gpr[kEsp] = kStackTop;
  }

  void load(Asm& a) {
    const std::vector<u8> bytes = a.finish();
    space_.vwrite_bytes(kCode, bytes.data(), static_cast<u32>(bytes.size()));
    cpu_.set_pc(kCode);
  }

  isa::StepResult step() { return cpu_.step(); }

  /// Step until trap or halt; bounded.
  isa::StepResult run(u32 max_steps = 1000) {
    for (u32 i = 0; i < max_steps; ++i) {
      const isa::StepResult r = cpu_.step();
      if (r.status != isa::StepStatus::kOk) return r;
    }
    ADD_FAILURE() << "did not stop";
    return {};
  }

  Cause trap_cause(const isa::StepResult& r) {
    EXPECT_EQ(r.status, isa::StepStatus::kTrap);
    return static_cast<Cause>(r.trap.cause);
  }

  mem::AddressSpace space_;
  CiscaCpu cpu_;
};

TEST_F(CiscaCpuTest, MovAndAdd) {
  Asm a(kCode);
  a.mov_r_imm(kEax, 40);
  a.mov_r_imm(kEbx, 2);
  a.alu_rr(Op::kAdd, kEax, kEbx);
  a.hlt();
  load(a);
  EXPECT_EQ(run().status, isa::StepStatus::kHalted);
  EXPECT_EQ(cpu_.regs().gpr[kEax], 42u);
}

TEST_F(CiscaCpuTest, FlagsDriveConditionalBranch) {
  Asm a(kCode);
  const auto skip = a.new_label();
  a.mov_r_imm(kEax, 5);
  a.alu_r_imm(Op::kCmp, kEax, 5);
  a.jcc(kCondE, skip);
  a.mov_r_imm(kEbx, 1);  // skipped
  a.bind(skip);
  a.mov_r_imm(kEcx, 2);
  a.hlt();
  load(a);
  run();
  EXPECT_EQ(cpu_.regs().gpr[kEbx], 0u);
  EXPECT_EQ(cpu_.regs().gpr[kEcx], 2u);
}

TEST_F(CiscaCpuTest, PushPopAndCallRet) {
  Asm a(kCode);
  const auto fn = a.new_label();
  a.mov_r_imm(kEax, 7);
  a.call(fn);
  a.hlt();
  a.bind(fn);
  a.inc_r(kEax);
  a.ret();
  load(a);
  run();
  EXPECT_EQ(cpu_.regs().gpr[kEax], 8u);
  EXPECT_EQ(cpu_.regs().gpr[kEsp], kStackTop);  // balanced
}

TEST_F(CiscaCpuTest, ByteAndWordMemoryAccess) {
  Asm a(kCode);
  MemOperand m;
  m.disp = static_cast<i32>(kData);
  a.mov_rm_imm(m, 0x11223344);
  MemOperand m1 = m;
  m1.disp += 1;
  a.movzx_r_rm8(kEcx, m1);  // second byte of the little-endian word
  a.movzx_r_rm16(kEdx, m);
  a.hlt();
  load(a);
  run();
  EXPECT_EQ(cpu_.regs().gpr[kEcx], 0x33u);
  EXPECT_EQ(cpu_.regs().gpr[kEdx], 0x3344u);
}

TEST_F(CiscaCpuTest, HighByteRegistersWork) {
  Asm a(kCode);
  a.mov_r_imm(kEax, 0);
  a.mov_r8_imm(4, 0xAB);  // AH
  a.hlt();
  load(a);
  run();
  EXPECT_EQ(cpu_.regs().gpr[kEax], 0xAB00u);
}

TEST_F(CiscaCpuTest, NullDereferenceIsPageFault) {
  Asm a(kCode);
  a.mov_r_imm(kEax, 0);
  MemOperand m;
  m.base = kEax;
  m.disp = 8;
  a.mov_r_rm(kEcx, m);
  load(a);
  const auto r = run();
  EXPECT_EQ(trap_cause(r), Cause::kPageFault);
  EXPECT_EQ(r.trap.addr, 8u);
  EXPECT_EQ(cpu_.regs().cr2, 8u);  // CR2 latches the fault address
}

TEST_F(CiscaCpuTest, WriteToTextPageFaults) {
  Asm a(kCode);
  MemOperand m;
  m.disp = static_cast<i32>(kCode);
  a.mov_rm_imm(m, 0);
  load(a);
  EXPECT_EQ(trap_cause(run()), Cause::kPageFault);
}

TEST_F(CiscaCpuTest, WpClearAllowsSupervisorWriteToProtectedPage) {
  Asm a(kCode);
  MemOperand m;
  m.disp = static_cast<i32>(kCode + 0x100);
  a.mov_rm_imm(m, 0xAA);
  a.hlt();
  load(a);
  cpu_.regs().cr0 &= ~(1u << kCr0WP);
  EXPECT_EQ(run().status, isa::StepStatus::kHalted);
  EXPECT_EQ(space_.vread8(kCode + 0x100), 0xAA);
}

TEST_F(CiscaCpuTest, Ud2RaisesInvalidOpcode) {
  Asm a(kCode);
  a.ud2();
  load(a);
  EXPECT_EQ(trap_cause(step()), Cause::kInvalidOpcode);
}

TEST_F(CiscaCpuTest, DivideByZeroRaisesDivideError) {
  Asm a(kCode);
  a.mov_r_imm(kEax, 100);
  a.mov_r_imm(kEdx, 0);
  a.mov_r_imm(kEcx, 0);
  a.div_r(kEcx);
  load(a);
  EXPECT_EQ(trap_cause(run()), Cause::kDivideError);
}

TEST_F(CiscaCpuTest, DivideComputesQuotientRemainder) {
  Asm a(kCode);
  a.mov_r_imm(kEax, 100);
  a.mov_r_imm(kEdx, 0);
  a.mov_r_imm(kEcx, 7);
  a.div_r(kEcx);
  a.hlt();
  load(a);
  run();
  EXPECT_EQ(cpu_.regs().gpr[kEax], 14u);
  EXPECT_EQ(cpu_.regs().gpr[kEdx], 2u);
}

TEST_F(CiscaCpuTest, BoundInRangeContinues) {
  Asm a(kCode);
  MemOperand m;
  m.disp = static_cast<i32>(kData);
  a.mov_rm_imm(m, 0);          // lower
  MemOperand m2 = m;
  m2.disp += 4;
  a.mov_rm_imm(m2, 100);       // upper
  a.mov_r_imm(kEax, 50);
  a.bound(kEax, m);
  a.hlt();
  load(a);
  EXPECT_EQ(run().status, isa::StepStatus::kHalted);
}

TEST_F(CiscaCpuTest, BoundOutOfRangeTraps) {
  Asm a(kCode);
  MemOperand m;
  m.disp = static_cast<i32>(kData);
  a.mov_rm_imm(m, 0);
  MemOperand m2 = m;
  m2.disp += 4;
  a.mov_rm_imm(m2, 100);
  a.mov_r_imm(kEax, 101);
  a.bound(kEax, m);
  load(a);
  EXPECT_EQ(trap_cause(run()), Cause::kBoundsTrap);
}

TEST_F(CiscaCpuTest, NtFlagMakesIretRaiseInvalidTss) {
  // The paper's Invalid TSS mechanism: EFLAGS.NT corrupted, next iret
  // attempts a nested-task backlink return.
  Asm a(kCode);
  a.iret();
  load(a);
  cpu_.regs().eflags |= 1u << kFlagNT;
  EXPECT_EQ(trap_cause(step()), Cause::kInvalidTss);
}

TEST_F(CiscaCpuTest, ClearedPeRaisesGeneralProtection) {
  // CR0.PE flip: protected mode lost; next fetch #GPs (Section 5.2).
  Asm a(kCode);
  a.nop();
  load(a);
  cpu_.regs().cr0 &= ~(1u << kCr0PE);
  EXPECT_EQ(trap_cause(step()), Cause::kGeneralProtection);
}

TEST_F(CiscaCpuTest, BadFsSelectorFaultsOnUse) {
  Asm a(kCode);
  MemOperand m;
  m.seg = SegOverride::kFs;
  m.disp = 0x10;
  a.mov_r_rm(kEax, m);
  load(a);
  cpu_.regs().fs = 0x1234;  // no such descriptor
  const auto r = run();
  EXPECT_EQ(trap_cause(r), Cause::kGeneralProtection);
  EXPECT_EQ(r.trap.aux, 0x1234u);
}

TEST_F(CiscaCpuTest, FsLimitExceededFaults) {
  Asm a(kCode);
  MemOperand m;
  m.seg = SegOverride::kFs;
  m.disp = 0x1000;  // beyond the 0x7F limit
  a.mov_r_rm(kEax, m);
  load(a);
  EXPECT_EQ(trap_cause(run()), Cause::kGeneralProtection);
}

TEST_F(CiscaCpuTest, Int80RaisesSyscallTrap) {
  Asm a(kCode);
  a.int_(0x80);
  load(a);
  const auto r = step();
  EXPECT_EQ(trap_cause(r), Cause::kSyscall);
  // Return address (pc after the int) is visible to the handler.
  EXPECT_EQ(r.trap.pc, kCode + 2);
}

TEST_F(CiscaCpuTest, InstructionBreakpointFiresBeforeExecution) {
  Asm a(kCode);
  a.mov_r_imm(kEax, 1);
  a.mov_r_imm(kEbx, 2);
  a.hlt();
  load(a);
  cpu_.debug().arm_insn_bp(kCode + 5);  // second instruction
  EXPECT_EQ(step().status, isa::StepStatus::kOk);
  const auto bp = step();
  EXPECT_EQ(bp.status, isa::StepStatus::kInsnBp);
  EXPECT_EQ(cpu_.regs().gpr[kEbx], 0u);  // not yet executed
  EXPECT_EQ(step().status, isa::StepStatus::kOk);
  EXPECT_EQ(cpu_.regs().gpr[kEbx], 2u);
}

TEST_F(CiscaCpuTest, DataBreakpointReportsAfterAccess) {
  Asm a(kCode);
  MemOperand m;
  m.disp = static_cast<i32>(kData + 0x40);
  a.mov_rm_imm(m, 0x99);
  a.hlt();
  load(a);
  cpu_.debug().arm_data_bp(0, kData + 0x40, 4, true, true);
  const auto r = step();
  EXPECT_EQ(r.status, isa::StepStatus::kOk);
  ASSERT_EQ(r.num_data_hits, 1);
  EXPECT_TRUE(r.data_hits[0].is_write);
  // The access completed before the report.
  EXPECT_EQ(space_.vread32(kData + 0x40), 0x99u);
}

TEST_F(CiscaCpuTest, SnapshotRestoreRoundTripsRegisters) {
  Asm a(kCode);
  a.mov_r_imm(kEax, 0x1111);
  a.push_r(kEax);
  a.hlt();
  load(a);
  const isa::CpuSnapshot snap = cpu_.snapshot();
  run();
  EXPECT_NE(cpu_.regs().gpr[kEax], 0u);
  cpu_.restore(snap);
  EXPECT_EQ(cpu_.regs().gpr[kEax], 0u);
  EXPECT_EQ(cpu_.regs().gpr[kEsp], kStackTop);
  EXPECT_EQ(cpu_.pc(), kCode);
}

TEST_F(CiscaCpuTest, CyclesAdvanceMonotonically) {
  Asm a(kCode);
  for (int i = 0; i < 10; ++i) a.nop();
  a.hlt();
  load(a);
  const Cycles before = cpu_.cycles();
  run();
  EXPECT_GT(cpu_.cycles(), before);
}

TEST_F(CiscaCpuTest, SysRegBankReadsAndWritesEsp) {
  isa::SystemRegisterBank& bank = cpu_.sysregs();
  const u32 esp_index = bank.index_of("ESP");
  EXPECT_EQ(bank.read(esp_index), kStackTop);
  bank.flip_bit(esp_index, 31);
  EXPECT_EQ(cpu_.regs().gpr[kEsp], kStackTop ^ 0x80000000u);
}

TEST_F(CiscaCpuTest, SysRegBankHasPaperTargets) {
  isa::SystemRegisterBank& bank = cpu_.sysregs();
  for (const char* name : {"EFLAGS", "CR0", "ESP", "EIP", "FS", "GS",
                           "IDTR_BASE", "DR7", "TR", "LDTR"}) {
    EXPECT_NO_THROW(bank.index_of(name)) << name;
  }
  EXPECT_GE(bank.count(), 20u);  // "approximately 20 in the P4"
}

TEST_F(CiscaCpuTest, ShiftsAndRotates) {
  Asm a(kCode);
  a.mov_r_imm(kEax, 0x81);
  a.shift_r_imm(Op::kShl, kEax, 4);
  a.mov_r_imm(kEbx, 0x100);
  a.shift_r_imm(Op::kShr, kEbx, 4);
  a.mov_r_imm(kEdx, 0x80000000u);
  a.shift_r_imm(Op::kSar, kEdx, 31);
  a.hlt();
  load(a);
  run();
  EXPECT_EQ(cpu_.regs().gpr[kEax], 0x810u);
  EXPECT_EQ(cpu_.regs().gpr[kEbx], 0x10u);
  EXPECT_EQ(cpu_.regs().gpr[kEdx], 0xFFFFFFFFu);
}

TEST_F(CiscaCpuTest, StackLimitExtensionCatchesWildEsp) {
  // Ablation X1: the paper-Section-7 PUSH/POP checking extension.
  mem::AddressSpace space(256 * 1024, mem::Endian::kLittle);
  space.map_region("code", kCode, 4096,
                   {.read = true, .write = false, .execute = true});
  space.map_region("stack", kStackTop - 4096, 4096,
                   {.read = true, .write = true});
  CiscaCpu cpu(space, CiscaCpu::Options{.stack_limit_check = true});
  cpu.set_stack_bounds(kStackTop - 4096, kStackTop);
  Asm a(kCode);
  a.push_r(kEax);
  const std::vector<u8> bytes = a.finish();
  space.vwrite_bytes(kCode, bytes.data(), static_cast<u32>(bytes.size()));
  cpu.set_pc(kCode);
  cpu.regs().gpr[kEsp] = 0x50000000;  // wildly out of the stack range
  const auto r = cpu.step();
  ASSERT_EQ(r.status, isa::StepStatus::kTrap);
  EXPECT_EQ(static_cast<Cause>(r.trap.cause), Cause::kGeneralProtection);
}

// Semantics of the realistic-density additions: string ops with REP,
// pusha/popa, xlat, AAM's divide-by-zero, far transfers, flag ops — all
// reachable through re-aligned instruction streams during code campaigns.
class CiscaExtendedOpsTest : public CiscaCpuTest {};

TEST_F(CiscaExtendedOpsTest, RepMovsdCopiesBlocks) {
  Asm a(kCode);
  a.mov_r_imm(kEsi, kData);
  a.mov_r_imm(kEdi, kData + 0x100);
  a.mov_r_imm(kEcx, 8);
  a.emit_bytes({0xF3, 0xA5});  // rep movsd
  a.hlt();
  load(a);
  for (u32 i = 0; i < 8; ++i) space_.vwrite32(kData + i * 4, 0x1000 + i);
  run(2000);
  for (u32 i = 0; i < 8; ++i) {
    EXPECT_EQ(space_.vread32(kData + 0x100 + i * 4), 0x1000 + i);
  }
  EXPECT_EQ(cpu_.regs().gpr[kEcx], 0u);
  EXPECT_EQ(cpu_.regs().gpr[kEsi], kData + 32);
}

TEST_F(CiscaExtendedOpsTest, RepStosbFillsMemory) {
  Asm a(kCode);
  a.mov_r_imm(kEdi, kData + 0x40);
  a.mov_r_imm(kEax, 0xAB);
  a.mov_r_imm(kEcx, 100);  // > the 16-per-step slice: exercises resume
  a.emit_bytes({0xF3, 0xAA});  // rep stosb
  a.hlt();
  load(a);
  run(2000);
  for (u32 i = 0; i < 100; ++i) {
    EXPECT_EQ(space_.vread8(kData + 0x40 + i), 0xAB);
  }
}

TEST_F(CiscaExtendedOpsTest, RepneScasbFindsByte) {
  Asm a(kCode);
  a.mov_r_imm(kEdi, kData);
  a.mov_r_imm(kEax, 0x77);
  a.mov_r_imm(kEcx, 64);
  a.emit_bytes({0xF2, 0xAE});  // repne scasb
  a.hlt();
  load(a);
  space_.vwrite8(kData + 10, 0x77);
  run(2000);
  // edi stops one past the match.
  EXPECT_EQ(cpu_.regs().gpr[kEdi], kData + 11);
}

TEST_F(CiscaExtendedOpsTest, DirectionFlagReversesStrings) {
  Asm a(kCode);
  a.emit_bytes({0xFD});  // std
  a.mov_r_imm(kEsi, kData + 16);
  a.emit_bytes({0xAC});  // lodsb
  a.hlt();
  load(a);
  space_.vwrite8(kData + 16, 0x5A);
  run(100);
  EXPECT_EQ(cpu_.regs().gpr[kEax] & 0xFF, 0x5Au);
  EXPECT_EQ(cpu_.regs().gpr[kEsi], kData + 15);  // decremented
}

TEST_F(CiscaExtendedOpsTest, PushaPopaRoundTripsRegisters) {
  Asm a(kCode);
  a.mov_r_imm(kEax, 1);
  a.mov_r_imm(kEbx, 2);
  a.mov_r_imm(kEsi, 3);
  a.emit_bytes({0x60});  // pusha
  a.mov_r_imm(kEax, 99);
  a.mov_r_imm(kEbx, 99);
  a.mov_r_imm(kEsi, 99);
  a.emit_bytes({0x61});  // popa
  a.hlt();
  load(a);
  run(100);
  EXPECT_EQ(cpu_.regs().gpr[kEax], 1u);
  EXPECT_EQ(cpu_.regs().gpr[kEbx], 2u);
  EXPECT_EQ(cpu_.regs().gpr[kEsi], 3u);
  EXPECT_EQ(cpu_.regs().gpr[kEsp], kStackTop);  // balanced
}

TEST_F(CiscaExtendedOpsTest, XlatLooksUpTable) {
  Asm a(kCode);
  a.mov_r_imm(kEbx, kData);
  a.mov_r8_imm(0, 5);          // al = 5
  a.emit_bytes({0xD7});        // xlat
  a.hlt();
  load(a);
  space_.vwrite8(kData + 5, 0xEE);
  run(100);
  EXPECT_EQ(cpu_.regs().gpr[kEax] & 0xFF, 0xEEu);
}

TEST_F(CiscaExtendedOpsTest, AamZeroRaisesDivideError) {
  Asm a(kCode);
  a.emit_bytes({0xD4, 0x00});  // aam 0
  load(a);
  EXPECT_EQ(trap_cause(step()), Cause::kDivideError);
}

TEST_F(CiscaExtendedOpsTest, AamComputesDigits) {
  Asm a(kCode);
  a.mov_r_imm(kEax, 57);
  a.emit_bytes({0xD4, 0x0A});  // aam 10
  a.hlt();
  load(a);
  run(100);
  EXPECT_EQ(cpu_.regs().gpr[kEax] & 0xFFFF, 0x0507u);  // ah=5, al=7
}

TEST_F(CiscaExtendedOpsTest, FarTransfersRaiseGeneralProtection) {
  Asm a(kCode);
  a.emit_bytes({0xEA, 0, 0, 0, 0, 0, 0});  // ljmp garbage
  load(a);
  EXPECT_EQ(trap_cause(step()), Cause::kGeneralProtection);
}

TEST_F(CiscaExtendedOpsTest, FpuMemoryOperandFaultsOnBadAddress) {
  Asm a(kCode);
  a.mov_r_imm(kEbx, 0x40);  // near-NULL
  a.emit_bytes({0xD9, 0x03});  // fld dword [ebx]
  load(a);
  const auto r = run(10);
  EXPECT_EQ(trap_cause(r), Cause::kPageFault);
  EXPECT_EQ(r.trap.addr, 0x40u);
}

TEST_F(CiscaExtendedOpsTest, CliStopsDeliveringInterruptsFlagwise) {
  Asm a(kCode);
  a.emit_bytes({0xFA});  // cli
  a.hlt();
  load(a);
  run(100);
  EXPECT_FALSE(test_bit(cpu_.regs().eflags, kFlagIF));
}

TEST_F(CiscaExtendedOpsTest, EnterBuildsFrame) {
  Asm a(kCode);
  a.emit_bytes({0xC8, 0x20, 0x00, 0x00});  // enter 0x20, 0
  a.hlt();
  load(a);
  run(100);
  EXPECT_EQ(cpu_.regs().gpr[kEbp], kStackTop - 4);
  EXPECT_EQ(cpu_.regs().gpr[kEsp], kStackTop - 4 - 0x20);
}

TEST_F(CiscaExtendedOpsTest, Mov16PrefixPreservesHighHalf) {
  Asm a(kCode);
  MemOperand m;
  m.disp = static_cast<i32>(kData);
  a.mov_r_imm(kEax, 0xAABBCCDD);
  a.mov_rm_r16(m, kEax);       // 16-bit store
  a.mov_r_imm(kEcx, 0xFFFFFFFF);
  a.mov_r16_rm(kEcx, m);       // 16-bit load
  a.hlt();
  load(a);
  run(100);
  EXPECT_EQ(space_.vread16(kData), 0xCCDDu);
  EXPECT_EQ(cpu_.regs().gpr[kEcx], 0xFFFFCCDDu);  // high half preserved
}

}  // namespace
}  // namespace kfi::cisca
