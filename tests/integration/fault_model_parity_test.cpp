// Determinism contract of the non-legacy fault models (ISSUE 6): a
// multi-bit and a rate-based campaign must merge to the same
// result_fingerprint regardless of worker count, and a campaign killed
// mid-run and resumed from its v3 journal must be bit-identical to an
// uninterrupted run — on both arches, jobs in {1, 4}.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <tuple>

#include "inject/campaign.hpp"
#include "inject/fault_model.hpp"
#include "inject/journal.hpp"

namespace kfi::inject {
namespace {

enum class ModelCase { kMultiBit, kBurst, kRate };

const char* model_case_name(ModelCase c) {
  switch (c) {
    case ModelCase::kMultiBit: return "multibit";
    case ModelCase::kBurst: return "burst";
    case ModelCase::kRate: return "rate";
  }
  return "?";
}

FaultModel model_for(ModelCase c) {
  FaultModel m;
  switch (c) {
    case ModelCase::kMultiBit:
      m.shape = FaultShape::kMultiBit;
      m.bits = 4;
      break;
    case ModelCase::kBurst:
      m.shape = FaultShape::kBurst;
      m.burst_span = 4;
      break;
    case ModelCase::kRate:
      m.trigger = FaultTrigger::kRate;
      m.rate = 2.0;
      break;
  }
  return m;
}

CampaignSpec model_spec(isa::Arch arch, ModelCase c) {
  CampaignSpec spec;
  spec.arch = arch;
  spec.kind = CampaignKind::kData;
  spec.injections = 16;
  spec.seed = 77;
  spec.model = model_for(c);
  return spec;
}

class FaultModelParityTest
    : public ::testing::TestWithParam<std::tuple<isa::Arch, u32, ModelCase>> {
};

TEST_P(FaultModelParityTest, JobsAndKillResumeAreBitIdentical) {
  const auto& [arch, jobs, mcase] = GetParam();
  const CampaignPlan plan = build_campaign_plan(model_spec(arch, mcase));
  const std::string path =
      (std::filesystem::temp_directory_path() /
       ("kfi_fm_parity_" + std::to_string(static_cast<int>(arch)) + "_" +
        std::to_string(jobs) + "_" + model_case_name(mcase) + ".kfij"))
          .string();
  std::filesystem::remove(path);

  // Reference: uninterrupted serial run.  The jobs-N uninterrupted run
  // must merge to the identical fingerprint.
  const CampaignResult reference = CampaignEngine(1).run(plan);
  const u64 want = result_fingerprint(reference);
  EXPECT_EQ(result_fingerprint(CampaignEngine(jobs).run(plan)), want);

  // Kill after 4 completions, then resume from the journal.
  u64 journaled = 0;
  {
    InjectionJournal journal = InjectionJournal::create(path, plan);
    std::atomic<bool> cancel{false};
    RunControl ctl;
    ctl.journal = &journal;
    ctl.cancel = &cancel;
    const CampaignResult partial = CampaignEngine(jobs).run(
        plan,
        [&cancel](u32 done, u32) {
          if (done >= 4) cancel.store(true);
        },
        ctl);
    EXPECT_TRUE(partial.interrupted);
    journaled = partial.executed();
    EXPECT_GE(journaled, 4u);
    EXPECT_LT(journaled, plan.targets.size());
  }
  InjectionJournal journal = InjectionJournal::resume(path, plan);
  EXPECT_EQ(journal.version(), kJournalVersion);  // non-legacy ⇒ always v3
  EXPECT_EQ(journal.recovered().size(), journaled);
  RunControl ctl;
  ctl.journal = &journal;
  const CampaignResult resumed = CampaignEngine(jobs).run(plan, {}, ctl);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.executed(), plan.targets.size());
  EXPECT_EQ(result_fingerprint(resumed), want);
  ASSERT_EQ(resumed.records.size(), reference.records.size());
  for (size_t i = 0; i < reference.records.size(); ++i) {
    EXPECT_EQ(resumed.records[i].outcome, reference.records[i].outcome)
        << "record " << i;
  }
  std::filesystem::remove(path);
}

TEST(FaultModelPlanTest, NonLegacyPlansGetDistinctFingerprints) {
  // The model is part of the plan identity: same seed/kind/arch, different
  // model ⇒ different plan fingerprint (so foreign journals are refused),
  // while the default model reproduces the legacy fingerprint stream.
  CampaignSpec legacy;
  legacy.arch = isa::Arch::kCisca;
  legacy.kind = CampaignKind::kData;
  legacy.injections = 8;
  legacy.seed = 77;
  CampaignSpec multi = legacy;
  multi.model.shape = FaultShape::kMultiBit;
  multi.model.bits = 4;
  CampaignSpec rate = legacy;
  rate.model.trigger = FaultTrigger::kRate;
  rate.model.rate = 2.0;
  const u64 fp_legacy = plan_fingerprint(build_campaign_plan(legacy));
  const u64 fp_multi = plan_fingerprint(build_campaign_plan(multi));
  const u64 fp_rate = plan_fingerprint(build_campaign_plan(rate));
  EXPECT_NE(fp_legacy, fp_multi);
  EXPECT_NE(fp_legacy, fp_rate);
  EXPECT_NE(fp_multi, fp_rate);
}

INSTANTIATE_TEST_SUITE_P(
    ArchesJobsModels, FaultModelParityTest,
    ::testing::Combine(::testing::Values(isa::Arch::kCisca, isa::Arch::kRiscf),
                       ::testing::Values(1u, 4u),
                       ::testing::Values(ModelCase::kMultiBit,
                                         ModelCase::kBurst, ModelCase::kRate)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == isa::Arch::kCisca
                             ? "cisca"
                             : "riscf") +
             "_jobs" + std::to_string(std::get<1>(info.param)) + "_" +
             model_case_name(std::get<2>(info.param));
    });

}  // namespace
}  // namespace kfi::inject
