// The campaign supervisor's fault-tolerance contract (ISSUE 4):
//   * kill/resume parity — a campaign cancelled after N injections and
//     resumed from its journal merges to the same result_fingerprint as
//     an uninterrupted run, for both arches and jobs in {1, 4};
//   * worker quarantine — an exception escaping one injection retries on
//     a fresh rig, then quarantines that index as a harness-error record
//     while the campaign completes every other index;
//   * watchdog — a wall-clock-stalled injection is interrupted via the
//     machine's HarnessInterrupt and quarantined instead of wedging;
//   * progress exceptions abort cleanly and the journal survives.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include "analysis/tally.hpp"
#include "common/error.hpp"
#include "inject/campaign.hpp"
#include "inject/journal.hpp"

namespace kfi::inject {
namespace {

std::string tmp_journal(const std::string& tag) {
  return (std::filesystem::temp_directory_path() / ("kfi_supervisor_" + tag))
      .string();
}

CampaignSpec small_spec(isa::Arch arch, u32 injections = 16) {
  CampaignSpec spec;
  spec.arch = arch;
  spec.kind = CampaignKind::kStack;  // crashes + reboots well represented
  spec.injections = injections;
  spec.seed = 77;
  return spec;
}

class KillResumeParityTest
    : public ::testing::TestWithParam<std::tuple<isa::Arch, u32>> {};

TEST_P(KillResumeParityTest, ResumedRunIsBitIdenticalToUninterrupted) {
  const auto& [arch, jobs] = GetParam();
  const CampaignPlan plan = build_campaign_plan(small_spec(arch));
  const std::string path =
      tmp_journal("parity_" + std::to_string(static_cast<int>(arch)) + "_" +
                  std::to_string(jobs) + ".kfij");
  std::filesystem::remove(path);

  // Reference: the plain uninterrupted serial run.
  const CampaignResult reference = CampaignEngine(1).run(plan);
  const u64 want = result_fingerprint(reference);

  // Phase 1: run with a journal and cancel after 4 completions (workers
  // already in flight finish their current index, so a few more than 4
  // may land in the journal — that is part of the contract).
  u64 journaled = 0;
  {
    InjectionJournal journal = InjectionJournal::create(path, plan);
    std::atomic<bool> cancel{false};
    RunControl ctl;
    ctl.journal = &journal;
    ctl.cancel = &cancel;
    const CampaignResult partial = CampaignEngine(jobs).run(
        plan,
        [&cancel](u32 done, u32) {
          if (done >= 4) cancel.store(true);
        },
        ctl);
    EXPECT_TRUE(partial.interrupted);
    journaled = partial.executed();
    EXPECT_GE(journaled, 4u);
    EXPECT_LT(journaled, plan.targets.size());
    EXPECT_EQ(partial.journal_flushes, journaled);
  }

  // Phase 2: a fresh process would reopen the journal and rerun; the
  // engine must skip journaled indices and merge bit-identically.
  InjectionJournal journal = InjectionJournal::resume(path, plan);
  EXPECT_EQ(journal.recovered().size(), journaled);
  RunControl ctl;
  ctl.journal = &journal;
  const CampaignResult resumed = CampaignEngine(jobs).run(plan, {}, ctl);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.resumed_records, journaled);
  EXPECT_EQ(resumed.executed(), plan.targets.size());
  EXPECT_EQ(result_fingerprint(resumed), want);
  // Spot-check the merge beyond the fingerprint.
  EXPECT_EQ(resumed.reboots, reference.reboots);
  EXPECT_EQ(resumed.datagrams_sent, reference.datagrams_sent);
  EXPECT_EQ(resumed.throughput.simulated_cycles,
            reference.throughput.simulated_cycles);
  ASSERT_EQ(resumed.records.size(), reference.records.size());
  for (size_t i = 0; i < reference.records.size(); ++i) {
    EXPECT_EQ(resumed.records[i].outcome, reference.records[i].outcome)
        << "record " << i;
    EXPECT_EQ(resumed.records[i].cycles_to_crash,
              reference.records[i].cycles_to_crash)
        << "record " << i;
  }
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(
    ArchesAndJobs, KillResumeParityTest,
    ::testing::Combine(::testing::Values(isa::Arch::kCisca, isa::Arch::kRiscf),
                       ::testing::Values(1u, 4u)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == isa::Arch::kCisca
                             ? "cisca_jobs"
                             : "riscf_jobs") +
             std::to_string(std::get<1>(info.param));
    });

TEST(SupervisorTest, ResumeSurvivesPerfKnobChanges) {
  // A journal written by a superblock-free campaign resumed under the
  // default (superblock + COW) configuration — and vice versa — must
  // still merge bit-identically: journaled records are data, and the
  // remaining injections are knob-independent by the parity contract.
  for (const bool first_run_superblock : {false, true}) {
    SCOPED_TRACE(first_run_superblock ? "sb_then_plain" : "plain_then_sb");
    CampaignSpec spec = small_spec(isa::Arch::kRiscf);
    spec.machine.superblock = first_run_superblock;
    spec.machine.cow_memory = first_run_superblock;
    const CampaignPlan plan = build_campaign_plan(spec);
    const u64 want = result_fingerprint(CampaignEngine(1).run(plan));

    const std::string path = tmp_journal(
        "knobchange_" + std::to_string(first_run_superblock) + ".kfij");
    std::filesystem::remove(path);
    {
      InjectionJournal journal = InjectionJournal::create(path, plan);
      std::atomic<bool> cancel{false};
      RunControl ctl;
      ctl.journal = &journal;
      ctl.cancel = &cancel;
      CampaignEngine(2).run(
          plan,
          [&cancel](u32 done, u32) {
            if (done >= 4) cancel.store(true);
          },
          ctl);
    }
    CampaignPlan flipped = plan;
    flipped.spec.machine.superblock = !first_run_superblock;
    flipped.spec.machine.cow_memory = !first_run_superblock;
    InjectionJournal journal = InjectionJournal::resume(path, flipped);
    RunControl ctl;
    ctl.journal = &journal;
    const CampaignResult resumed = CampaignEngine(2).run(flipped, {}, ctl);
    EXPECT_EQ(result_fingerprint(resumed), want);
    std::filesystem::remove(path);
  }
}

TEST(SupervisorTest, ThrowingWorkerQuarantinesIndexAndCampaignCompletes) {
  const CampaignPlan plan =
      build_campaign_plan(small_spec(isa::Arch::kRiscf, 12));
  const CampaignResult clean = CampaignEngine(1).run(plan);

  RunControl ctl;
  ctl.retries = 1;
  ctl.harness_fault_hook = [](u32 index, u32) {
    if (index == 5) throw std::runtime_error("chaos: worker fault at 5");
  };
  const CampaignResult result = CampaignEngine(2).run(plan, {}, ctl);

  EXPECT_FALSE(result.interrupted);
  EXPECT_EQ(result.executed(), plan.targets.size());
  EXPECT_EQ(result.quarantined, 1u);
  const InjectionRecord& q = result.records[5];
  EXPECT_EQ(q.outcome, OutcomeCategory::kHarnessError);
  EXPECT_EQ(q.harness_attempts, 2u);  // initial + 1 retry, both threw
  EXPECT_NE(q.harness_error.find("chaos: worker fault at 5"),
            std::string::npos)
      << q.harness_error;
  // Every other record is bit-identical to the clean run: the quarantine
  // must not disturb neighbouring injections.
  for (size_t i = 0; i < plan.targets.size(); ++i) {
    if (i == 5) continue;
    EXPECT_EQ(result.records[i].outcome, clean.records[i].outcome) << i;
    EXPECT_EQ(result.records[i].cycles_to_crash,
              clean.records[i].cycles_to_crash)
        << i;
  }
  // The tally reports the quarantine separately and keeps it out of the
  // paper-convention denominators.
  const analysis::OutcomeTally t = analysis::tally_records(result.records);
  EXPECT_EQ(t.quarantined, 1u);
  EXPECT_EQ(t.injected, plan.targets.size() - 1);
}

TEST(SupervisorTest, RetryOnFreshRigRecoversTransientFault) {
  const CampaignPlan plan =
      build_campaign_plan(small_spec(isa::Arch::kCisca, 10));
  const CampaignResult clean = CampaignEngine(1).run(plan);

  RunControl ctl;
  ctl.retries = 1;
  ctl.harness_fault_hook = [](u32 index, u32 attempt) {
    if (index == 3 && attempt == 0) {
      throw std::runtime_error("transient harness fault");
    }
  };
  const CampaignResult result = CampaignEngine(1).run(plan, {}, ctl);

  // The retry ran on a freshly built rig, so the record — and with it the
  // whole campaign — is bit-identical to the clean run.
  EXPECT_EQ(result.quarantined, 0u);
  EXPECT_EQ(result.harness_retries, 1u);
  EXPECT_EQ(result_fingerprint(result), result_fingerprint(clean));
}

TEST(SupervisorTest, StallInterruptQuarantinesWithoutRetry) {
  const CampaignPlan plan =
      build_campaign_plan(small_spec(isa::Arch::kRiscf, 8));
  RunControl ctl;
  ctl.retries = 3;  // must NOT be consumed: a stalled index stalls again
  ctl.harness_fault_hook = [](u32 index, u32) {
    if (index == 2) throw StallInterrupt("synthetic stall");
  };
  const CampaignResult result = CampaignEngine(1).run(plan, {}, ctl);
  EXPECT_EQ(result.stalls, 1u);
  EXPECT_EQ(result.quarantined, 1u);
  EXPECT_EQ(result.harness_retries, 0u);
  EXPECT_EQ(result.records[2].outcome, OutcomeCategory::kHarnessError);
  EXPECT_EQ(result.records[2].harness_attempts, 1u);
  EXPECT_EQ(result.executed(), plan.targets.size());
}

TEST(SupervisorTest, WallClockWatchdogInterruptsWedgedInjection) {
  const CampaignPlan plan =
      build_campaign_plan(small_spec(isa::Arch::kRiscf, 6));
  RunControl ctl;
  ctl.stall_seconds = 2.0;
  // Wedge index 1 past its wall budget *before* the machine runs: the
  // watchdog raises the HarnessInterrupt, and the first Machine::run of
  // the attempt observes it and throws.  Generous margins keep this
  // stable under sanitizer builds.
  ctl.harness_fault_hook = [](u32 index, u32) {
    if (index == 1) std::this_thread::sleep_for(std::chrono::seconds(5));
  };
  const CampaignResult result = CampaignEngine(1).run(plan, {}, ctl);
  EXPECT_EQ(result.stalls, 1u);
  EXPECT_EQ(result.quarantined, 1u);
  EXPECT_EQ(result.records[1].outcome, OutcomeCategory::kHarnessError);
  EXPECT_EQ(result.executed(), plan.targets.size());
}

TEST(SupervisorTest, ThrowingProgressAbortsCleanlyAndJournalSurvives) {
  const CampaignPlan plan =
      build_campaign_plan(small_spec(isa::Arch::kRiscf, 12));
  const CampaignResult reference = CampaignEngine(1).run(plan);
  const std::string path = tmp_journal("progress_throw.kfij");
  std::filesystem::remove(path);

  {
    InjectionJournal journal = InjectionJournal::create(path, plan);
    RunControl ctl;
    ctl.journal = &journal;
    EXPECT_THROW(CampaignEngine(2).run(
                     plan,
                     [](u32 done, u32) {
                       if (done == 3) throw std::runtime_error("ui died");
                     },
                     ctl),
                 std::runtime_error);
  }

  // Everything that completed before the abort is durable; resuming
  // finishes the campaign bit-identically.
  InjectionJournal journal = InjectionJournal::resume(path, plan);
  EXPECT_GE(journal.recovered().size(), 3u);
  RunControl ctl;
  ctl.journal = &journal;
  const CampaignResult resumed = CampaignEngine(2).run(plan, {}, ctl);
  EXPECT_EQ(result_fingerprint(resumed), result_fingerprint(reference));
  std::filesystem::remove(path);
}

TEST(SupervisorTest, QuarantinedIndexIsRetriedOnResume) {
  // A quarantined record is journaled (so partial tallies are complete)
  // but NOT treated as done on resume: the next run gets a second chance
  // at the index and heals the campaign if the fault was environmental.
  const CampaignPlan plan =
      build_campaign_plan(small_spec(isa::Arch::kCisca, 8));
  const CampaignResult clean = CampaignEngine(1).run(plan);
  const std::string path = tmp_journal("requarantine.kfij");
  std::filesystem::remove(path);

  {
    InjectionJournal journal = InjectionJournal::create(path, plan);
    RunControl ctl;
    ctl.journal = &journal;
    ctl.retries = 0;
    ctl.harness_fault_hook = [](u32 index, u32) {
      if (index == 4) throw std::runtime_error("environmental fault");
    };
    const CampaignResult broken = CampaignEngine(1).run(plan, {}, ctl);
    EXPECT_EQ(broken.quarantined, 1u);
  }

  InjectionJournal journal = InjectionJournal::resume(path, plan);
  EXPECT_EQ(journal.recovered().size(), plan.targets.size());
  RunControl ctl;
  ctl.journal = &journal;  // fault gone: hook not installed this time
  const CampaignResult healed = CampaignEngine(1).run(plan, {}, ctl);
  EXPECT_EQ(healed.resumed_records, plan.targets.size() - 1);
  EXPECT_EQ(healed.quarantined, 0u);
  EXPECT_EQ(healed.records[4].outcome, clean.records[4].outcome);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace kfi::inject
