// Robustness fuzzing: the simulators must execute ARBITRARY garbage
// safely.  Every injection campaign depends on this — corrupted kernels
// jump into data, stacks, and re-aligned byte soup, and the only
// acceptable outcomes are architectural traps, breakpoints, halts, or
// plain execution.  A host-side exception (kfi::InternalError) anywhere in
// these paths would poison campaign statistics.
#include <gtest/gtest.h>

#include "cisca/cpu.hpp"
#include "common/rng.hpp"
#include "kernel/abi.hpp"
#include "kernel/layout.hpp"
#include "kernel/machine.hpp"
#include "mem/address_space.hpp"
#include "riscf/cpu.hpp"

namespace kfi {
namespace {

constexpr Addr kCode = 0x10000;
constexpr Addr kStackTop = 0x31000;

template <typename Cpu>
void fuzz_cpu(mem::Endian endian, u64 seed) {
  mem::AddressSpace space(256 * 1024, endian);
  space.map_region("code", kCode, 16384,
                   {.read = true, .write = true, .execute = true});
  space.map_region("stack", kStackTop - 8192, 8192,
                   {.read = true, .write = true, .execute = true});
  Rng rng(seed);
  Cpu cpu(space);
  for (u32 round = 0; round < 60; ++round) {
    // Fresh random code blob.
    for (Addr a = kCode; a < kCode + 16384; a += 4) {
      space.vwrite32(a, rng.next_u32());
    }
    cpu.set_pc(kCode + 4 * static_cast<u32>(rng.below(4000)));
    cpu.regs().gpr[4] = kStackTop;  // some plausible register state
    if constexpr (std::is_same_v<Cpu, riscf::RiscfCpu>) {
      cpu.regs().gpr[1] = kStackTop;
    }
    for (u32 step = 0; step < 3000; ++step) {
      const isa::StepResult r = cpu.step();  // must never throw
      if (r.status == isa::StepStatus::kTrap ||
          r.status == isa::StepStatus::kHalted) {
        break;
      }
    }
  }
}

TEST(FuzzTest, CiscaExecutesRandomBytesWithoutHostFaults) {
  fuzz_cpu<cisca::CiscaCpu>(mem::Endian::kLittle, 0xF00D);
}

TEST(FuzzTest, RiscfExecutesRandomWordsWithoutHostFaults) {
  fuzz_cpu<riscf::RiscfCpu>(mem::Endian::kBig, 0xBEEF);
}

TEST(FuzzTest, MachineSurvivesRandomKernelBitFlips) {
  // Heavier end-to-end fuzz: flip random kernel text/data/stack bits on a
  // live machine and run syscalls; any outcome is fine except a host
  // exception or an unclassifiable event.
  for (const auto arch : {isa::Arch::kCisca, isa::Arch::kRiscf}) {
    kernel::Machine machine(arch, kernel::MachineOptions{});
    Rng rng(arch == isa::Arch::kCisca ? 111 : 222);
    for (u32 trial = 0; trial < 40; ++trial) {
      machine.restore(machine.boot_snapshot());
      // 1-3 random flips across text, data, and stack regions.
      const u32 flips = 1 + static_cast<u32>(rng.below(3));
      for (u32 f = 0; f < flips; ++f) {
        Addr addr = 0;
        switch (rng.below(3)) {
          case 0:
            addr = machine.image().code_base +
                   static_cast<u32>(rng.below(machine.image().code.size()));
            break;
          case 1:
            addr = machine.image().data_base +
                   static_cast<u32>(rng.below(machine.image().data.size()));
            break;
          default:
            addr = machine.task_stack_base(
                       static_cast<u32>(rng.below(kernel::kNumTasks))) +
                   static_cast<u32>(
                       rng.below(kernel::stack_size(arch) - 4));
            break;
        }
        machine.space().vflip_bit(addr, rng.bit_index(8));
      }
      for (u32 s = 0; s < 30; ++s) {
        const kernel::Event ev = machine.syscall(
            static_cast<kernel::Syscall>(1 + rng.below(8)), 0,
            kernel::kUserBufBase, 64);
        if (ev.kind != kernel::EventKind::kSyscallDone) break;
      }
    }
  }
}

TEST(FuzzTest, MachineSurvivesRandomRegisterCorruption) {
  for (const auto arch : {isa::Arch::kCisca, isa::Arch::kRiscf}) {
    kernel::Machine machine(arch, kernel::MachineOptions{});
    Rng rng(arch == isa::Arch::kCisca ? 333 : 444);
    isa::SystemRegisterBank& bank = machine.cpu().sysregs();
    for (u32 trial = 0; trial < 60; ++trial) {
      machine.restore(machine.boot_snapshot());
      machine.begin_syscall(kernel::Syscall::kWrite, 1,
                            kernel::kUserBufBase, 64);
      machine.run(machine.cpu().cycles() + 1000);
      const u32 reg = static_cast<u32>(rng.below(bank.count()));
      bank.flip_bit(reg, rng.bit_index(bank.info(reg).bits));
      // Drain to any terminal event within a bounded budget.
      const u64 stop = machine.cpu().cycles() + 30'000'000;
      for (;;) {
        const kernel::Event ev = machine.run(stop);
        if (ev.kind == kernel::EventKind::kSyscallDone ||
            ev.kind == kernel::EventKind::kCrash ||
            ev.kind == kernel::EventKind::kCheckstop ||
            ev.kind == kernel::EventKind::kCycleStop) {
          break;
        }
      }
    }
  }
}

}  // namespace
}  // namespace kfi
