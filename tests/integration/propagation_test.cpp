// Error-propagation tracing end to end: the observational contract
// (tracing on/off and any worker count fingerprint bit-identically),
// summary coherence over whole campaigns, and traced single injections
// on both modeled processors.
#include <gtest/gtest.h>

#include "inject/campaign.hpp"
#include "kernel/machine.hpp"
#include "trace/taint.hpp"
#include "workload/workload.hpp"

namespace kfi::inject {
namespace {

CampaignSpec small_spec(isa::Arch arch, CampaignKind kind, u32 n = 30,
                        u64 seed = 77) {
  CampaignSpec spec;
  spec.arch = arch;
  spec.kind = kind;
  spec.injections = n;
  spec.seed = seed;
  return spec;
}

TEST(PropagationParityTest, FingerprintIdenticalTraceOnOffAcrossJobs) {
  for (const auto arch : {isa::Arch::kCisca, isa::Arch::kRiscf}) {
    const auto spec = small_spec(arch, CampaignKind::kStack);
    const u64 baseline =
        result_fingerprint(run_campaign(spec, {}, /*jobs=*/1, false));
    for (const u32 jobs : {1u, 4u}) {
      for (const bool trace : {false, true}) {
        const CampaignResult r = run_campaign(spec, {}, jobs, trace);
        EXPECT_EQ(result_fingerprint(r), baseline)
            << isa::arch_name(arch) << " jobs=" << jobs
            << " trace=" << trace;
      }
    }
  }
}

TEST(PropagationParityTest, TracedRecordsCarrySummariesUntracedDoNot) {
  const auto spec = small_spec(isa::Arch::kRiscf, CampaignKind::kStack, 20);
  const CampaignResult off = run_campaign(spec, {}, 1, false);
  const CampaignResult on = run_campaign(spec, {}, 1, true);
  for (const auto& r : off.records) EXPECT_FALSE(r.propagation_valid);
  for (const auto& r : on.records) {
    EXPECT_TRUE(r.propagation_valid);
    EXPECT_TRUE(r.propagation.traced);
  }
}

TEST(PropagationParityTest, CampaignSummariesAreCoherent) {
  for (const auto arch : {isa::Arch::kCisca, isa::Arch::kRiscf}) {
    const CampaignResult result =
        run_campaign(small_spec(arch, CampaignKind::kStack, 40), {}, 1, true);
    u32 seeded = 0, used = 0;
    for (const auto& r : result.records) {
      ASSERT_TRUE(r.propagation_valid);
      const auto& p = r.propagation;
      seeded += p.seeded ? 1 : 0;
      used += p.used ? 1 : 0;
      if (p.used) {
        // A consumed error must have been seeded, at a consistent time,
        // through at least one tainted read at depth >= 1.
        EXPECT_TRUE(p.seeded);
        EXPECT_GE(p.first_use_insn, p.seed_insn);
        EXPECT_EQ(p.first_use_latency, p.first_use_insn - p.seed_insn);
        EXPECT_GE(p.tainted_reads, 1u);
        EXPECT_GE(p.max_depth, 1u);
      } else {
        EXPECT_EQ(p.max_depth, 0u);
        EXPECT_EQ(p.tainted_branches, 0u);
        EXPECT_FALSE(p.syscall_result_tainted);
      }
      if (p.live_at_end) {
        EXPECT_TRUE(p.live_regs_at_end > 0 || p.live_bytes_at_end > 0);
      }
    }
    // Stack flips always land in an allocated stack word: every run
    // seeds, and at this scale some errors must actually be consumed.
    EXPECT_EQ(seeded, result.records.size()) << isa::arch_name(arch);
    EXPECT_GT(used, 0u) << isa::arch_name(arch);
  }
}

TEST(PropagationSingleInjectionTest, SpinlockMagicFlipTracesOnBothArches) {
  // The Figure 13 worked example: a flipped spinlock magic byte is read
  // by the very next lock acquisition, so the trace must show a seeded,
  // consumed error whose chain is at least one hop deep.
  for (const auto arch : {isa::Arch::kCisca, isa::Arch::kRiscf}) {
    kernel::Machine machine(arch, kernel::MachineOptions{});
    auto wl = workload::make_suite();
    const auto& lock = machine.image().object("kernel_flag_cacheline");
    const InjectionTarget t = InjectionTarget::data(
        lock.addr + lock.field_named("magic").offset, 22);
    trace::TaintEngine taint;
    const InjectionRecord record =
        run_single_injection(machine, *wl, t, 5, &taint);
    ASSERT_EQ(record.outcome, OutcomeCategory::kKnownCrash)
        << isa::arch_name(arch);
    ASSERT_TRUE(record.propagation_valid);
    const auto& p = record.propagation;
    EXPECT_TRUE(p.seeded) << isa::arch_name(arch);
    EXPECT_TRUE(p.used) << isa::arch_name(arch);
    EXPECT_GE(p.max_depth, 1u);
    EXPECT_GE(p.tainted_reads, 1u);
    // The corrupted magic word is still in memory at the crash.
    EXPECT_TRUE(p.live_at_end);
  }
}

TEST(PropagationSingleInjectionTest, UntracedSingleInjectionHasNoSummary) {
  kernel::Machine machine(isa::Arch::kCisca, kernel::MachineOptions{});
  auto wl = workload::make_suite();
  const auto& lock = machine.image().object("kernel_flag_cacheline");
  const InjectionTarget t = InjectionTarget::data(
      lock.addr + lock.field_named("magic").offset, 22);
  const InjectionRecord record = run_single_injection(machine, *wl, t, 5);
  EXPECT_FALSE(record.propagation_valid);
}

}  // namespace
}  // namespace kfi::inject
