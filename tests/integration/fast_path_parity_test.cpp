// The perf fast paths' bit-exactness contract: the predecoded-instruction
// cache and the dirty-page reboot are pure speedups.  For every arch and
// campaign kind, a campaign run with either (or both) fast paths disabled
// must produce a bit-identical result — same records, same merged
// counters — as the default configuration, at any worker count.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "inject/campaign.hpp"
#include "inject/engine.hpp"

namespace kfi::inject {
namespace {

CampaignSpec fastpath_spec(isa::Arch arch, CampaignKind kind) {
  CampaignSpec spec;
  spec.arch = arch;
  spec.kind = kind;
  spec.injections = 12;
  spec.seed = 77;
  return spec;
}

/// A plan copy with the machine fast-path knobs overridden.  Workers build
/// their Machines from plan.spec.machine, so this flips the config without
/// replanning — the injection targets stay literally identical.
CampaignPlan with_knobs(const CampaignPlan& plan, bool decode_cache,
                        bool fast_reboot) {
  CampaignPlan variant = plan;
  variant.spec.machine.decode_cache = decode_cache;
  variant.spec.machine.fast_reboot = fast_reboot;
  return variant;
}

class FastPathParityTest
    : public ::testing::TestWithParam<std::tuple<isa::Arch, CampaignKind>> {};

TEST_P(FastPathParityTest, FastPathsAreBitExact) {
  const auto& [arch, kind] = GetParam();
  const CampaignPlan plan = build_campaign_plan(fastpath_spec(arch, kind));

  const CampaignResult baseline = CampaignEngine(2).run(plan);
  const u64 want = result_fingerprint(baseline);

  struct Variant {
    const char* name;
    bool decode_cache, fast_reboot;
  };
  const Variant variants[] = {
      {"no_decode_cache", false, true},
      {"full_copy_reboot", true, false},
      {"neither_fast_path", false, false},
  };
  for (const Variant& v : variants) {
    SCOPED_TRACE(v.name);
    const CampaignResult got =
        CampaignEngine(2).run(with_knobs(plan, v.decode_cache, v.fast_reboot));
    ASSERT_EQ(got.records.size(), baseline.records.size());
    EXPECT_EQ(result_fingerprint(got), want);
    // The fingerprint covers these, but compare a few directly so a
    // divergence points at the field, not just at a hash mismatch.
    EXPECT_EQ(got.reboots, baseline.reboots);
    EXPECT_EQ(got.nominal_cycles, baseline.nominal_cycles);
    for (size_t i = 0; i < got.records.size(); ++i) {
      EXPECT_EQ(got.records[i].outcome, baseline.records[i].outcome)
          << "record " << i;
      EXPECT_EQ(got.records[i].cycles_to_crash,
                baseline.records[i].cycles_to_crash)
          << "record " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCampaigns, FastPathParityTest,
    ::testing::Combine(::testing::Values(isa::Arch::kCisca, isa::Arch::kRiscf),
                       ::testing::Values(CampaignKind::kStack,
                                         CampaignKind::kRegister,
                                         CampaignKind::kData,
                                         CampaignKind::kCode)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == isa::Arch::kCisca
                             ? "cisca_"
                             : "riscf_") +
             campaign_kind_name(std::get<1>(info.param));
    });

TEST(ResultFingerprintTest, DistinguishesDifferentCampaigns) {
  // Guard against a degenerate hash: different seeds must (for any
  // non-pathological case) fingerprint differently.
  auto spec = fastpath_spec(isa::Arch::kCisca, CampaignKind::kData);
  const CampaignResult a = CampaignEngine(1).run(build_campaign_plan(spec));
  spec.seed = 1234;
  const CampaignResult b = CampaignEngine(1).run(build_campaign_plan(spec));
  EXPECT_NE(result_fingerprint(a), result_fingerprint(b));
}

}  // namespace
}  // namespace kfi::inject
