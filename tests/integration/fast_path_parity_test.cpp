// The perf fast paths' bit-exactness contract: the predecoded-instruction
// cache, the dirty-page reboot, superblock execution, and copy-on-write
// page sharing are pure speedups.  For every arch and campaign kind, a
// campaign run with any of them disabled must produce a bit-identical
// result — same records, same merged counters — as the default
// configuration, at any worker count, with tracing on or off.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "inject/campaign.hpp"
#include "inject/engine.hpp"

namespace kfi::inject {
namespace {

CampaignSpec fastpath_spec(isa::Arch arch, CampaignKind kind) {
  CampaignSpec spec;
  spec.arch = arch;
  spec.kind = kind;
  spec.injections = 12;
  spec.seed = 77;
  return spec;
}

/// A plan copy with the machine fast-path knobs overridden.  Workers build
/// their Machines from plan.spec.machine, so this flips the config without
/// replanning — the injection targets stay literally identical.
CampaignPlan with_knobs(const CampaignPlan& plan, bool decode_cache,
                        bool fast_reboot, bool superblock = true,
                        bool cow_memory = true) {
  CampaignPlan variant = plan;
  variant.spec.machine.decode_cache = decode_cache;
  variant.spec.machine.fast_reboot = fast_reboot;
  variant.spec.machine.superblock = superblock;
  variant.spec.machine.cow_memory = cow_memory;
  return variant;
}

class FastPathParityTest
    : public ::testing::TestWithParam<std::tuple<isa::Arch, CampaignKind>> {};

TEST_P(FastPathParityTest, FastPathsAreBitExact) {
  const auto& [arch, kind] = GetParam();
  const CampaignPlan plan = build_campaign_plan(fastpath_spec(arch, kind));

  const CampaignResult baseline = CampaignEngine(2).run(plan);
  const u64 want = result_fingerprint(baseline);

  struct Variant {
    const char* name;
    bool decode_cache, fast_reboot, superblock, cow_memory;
  };
  const Variant variants[] = {
      {"no_decode_cache", false, true, true, true},
      {"full_copy_reboot", true, false, true, true},
      {"no_superblock", true, true, false, true},
      {"no_cow", true, true, true, false},
      {"no_fast_paths_at_all", false, false, false, false},
  };
  for (const Variant& v : variants) {
    SCOPED_TRACE(v.name);
    const CampaignResult got = CampaignEngine(2).run(with_knobs(
        plan, v.decode_cache, v.fast_reboot, v.superblock, v.cow_memory));
    ASSERT_EQ(got.records.size(), baseline.records.size());
    EXPECT_EQ(result_fingerprint(got), want);
    // The fingerprint covers these, but compare a few directly so a
    // divergence points at the field, not just at a hash mismatch.
    EXPECT_EQ(got.reboots, baseline.reboots);
    EXPECT_EQ(got.nominal_cycles, baseline.nominal_cycles);
    for (size_t i = 0; i < got.records.size(); ++i) {
      EXPECT_EQ(got.records[i].outcome, baseline.records[i].outcome)
          << "record " << i;
      EXPECT_EQ(got.records[i].cycles_to_crash,
                baseline.records[i].cycles_to_crash)
          << "record " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCampaigns, FastPathParityTest,
    ::testing::Combine(::testing::Values(isa::Arch::kCisca, isa::Arch::kRiscf),
                       ::testing::Values(CampaignKind::kStack,
                                         CampaignKind::kRegister,
                                         CampaignKind::kData,
                                         CampaignKind::kCode)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == isa::Arch::kCisca
                             ? "cisca_"
                             : "riscf_") +
             campaign_kind_name(std::get<1>(info.param));
    });

// The PR-8 acceptance matrix: superblock {on,off} x COW {on,off} x jobs
// {1,4} x trace {on,off} must all merge to one fingerprint, per arch.
// (The code campaign is the stressful one for superblocks: the injector
// corrupts exactly the bytes the block cache holds.)
class SuperblockCowMatrixTest : public ::testing::TestWithParam<isa::Arch> {};

TEST_P(SuperblockCowMatrixTest, AllKnobCombinationsMergeIdentically) {
  const isa::Arch arch = GetParam();
  const CampaignPlan plan =
      build_campaign_plan(fastpath_spec(arch, CampaignKind::kCode));
  const u64 want = result_fingerprint(CampaignEngine(1).run(plan));

  for (const bool superblock : {true, false}) {
    for (const bool cow : {true, false}) {
      for (const u32 jobs : {1u, 4u}) {
        for (const bool trace : {false, true}) {
          SCOPED_TRACE("superblock=" + std::to_string(superblock) +
                       " cow=" + std::to_string(cow) +
                       " jobs=" + std::to_string(jobs) +
                       " trace=" + std::to_string(trace));
          RunControl ctl;
          ctl.trace = trace;
          const CampaignResult got = CampaignEngine(jobs).run(
              with_knobs(plan, true, true, superblock, cow), {}, ctl);
          EXPECT_EQ(result_fingerprint(got), want);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothArches, SuperblockCowMatrixTest,
                         ::testing::Values(isa::Arch::kCisca,
                                           isa::Arch::kRiscf),
                         [](const auto& info) {
                           return std::string(info.param == isa::Arch::kCisca
                                                  ? "cisca"
                                                  : "riscf");
                         });

TEST(ResultFingerprintTest, DistinguishesDifferentCampaigns) {
  // Guard against a degenerate hash: different seeds must (for any
  // non-pathological case) fingerprint differently.
  auto spec = fastpath_spec(isa::Arch::kCisca, CampaignKind::kData);
  const CampaignResult a = CampaignEngine(1).run(build_campaign_plan(spec));
  spec.seed = 1234;
  const CampaignResult b = CampaignEngine(1).run(build_campaign_plan(spec));
  EXPECT_NE(result_fingerprint(a), result_fingerprint(b));
}

}  // namespace
}  // namespace kfi::inject
