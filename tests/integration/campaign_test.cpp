// Integration tests over the full injection pipeline: campaign
// determinism, outcome-category invariants, cross-architecture headline
// contrasts at small scale, and the ablation switches.
#include <gtest/gtest.h>

#include "analysis/tally.hpp"
#include "inject/campaign.hpp"

namespace kfi::inject {
namespace {

using analysis::OutcomeTally;
using analysis::tally_records;

CampaignSpec small_spec(isa::Arch arch, CampaignKind kind, u32 n = 40,
                        u64 seed = 77) {
  CampaignSpec spec;
  spec.arch = arch;
  spec.kind = kind;
  spec.injections = n;
  spec.seed = seed;
  return spec;
}

TEST(CampaignIntegrationTest, IdenticalSpecsGiveIdenticalResults) {
  const auto spec = small_spec(isa::Arch::kCisca, CampaignKind::kCode, 25);
  const CampaignResult a = run_campaign(spec);
  const CampaignResult b = run_campaign(spec);
  ASSERT_EQ(a.records.size(), b.records.size());
  EXPECT_EQ(a.nominal_cycles, b.nominal_cycles);
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].outcome, b.records[i].outcome) << i;
    EXPECT_EQ(a.records[i].activated, b.records[i].activated) << i;
    EXPECT_EQ(a.records[i].cycles_to_crash, b.records[i].cycles_to_crash) << i;
    EXPECT_EQ(a.records[i].crash.pc, b.records[i].crash.pc) << i;
  }
}

TEST(CampaignIntegrationTest, DifferentSeedsGiveDifferentTargets) {
  const CampaignResult a =
      run_campaign(small_spec(isa::Arch::kRiscf, CampaignKind::kCode, 25, 1));
  const CampaignResult b =
      run_campaign(small_spec(isa::Arch::kRiscf, CampaignKind::kCode, 25, 2));
  bool any_different = false;
  for (size_t i = 0; i < a.records.size(); ++i) {
    any_different |=
        a.records[i].target.site().addr != b.records[i].target.site().addr;
  }
  EXPECT_TRUE(any_different);
}

class CampaignInvariantsTest
    : public ::testing::TestWithParam<std::tuple<isa::Arch, CampaignKind>> {};

TEST_P(CampaignInvariantsTest, RecordsAreWellFormed) {
  const auto& [arch, kind] = GetParam();
  const CampaignResult result = run_campaign(small_spec(arch, kind, 50));
  ASSERT_EQ(result.records.size(), 50u);
  EXPECT_GT(result.nominal_cycles, 1'000'000u);
  EXPECT_EQ(result.reboots, 50u);  // one "reboot" per experiment
  u32 crash_seq = 0;
  for (const auto& r : result.records) {
    // Every record lands in exactly one category.
    EXPECT_LT(static_cast<u32>(r.outcome),
              static_cast<u32>(OutcomeCategory::kNumOutcomes));
    if (r.outcome == OutcomeCategory::kNotActivated) {
      EXPECT_FALSE(r.crashed);
      EXPECT_TRUE(r.activation_known);
    }
    if (r.outcome == OutcomeCategory::kKnownCrash) {
      EXPECT_TRUE(r.crashed);
      EXPECT_TRUE(r.crash_report_received);
      EXPECT_TRUE(r.activated);
      ++crash_seq;
    }
    if (r.crashed) {
      // Cycles-to-crash is measured from activation and must be sane
      // (below the hang budget).
      EXPECT_GT(r.cycles_to_crash, 0u);
      EXPECT_LT(r.cycles_to_crash, 20u * result.nominal_cycles);
    }
    if (kind == CampaignKind::kRegister) {
      EXPECT_FALSE(r.activation_known);
    }
  }
  // Crash datagram accounting is consistent with the channel stats.
  EXPECT_EQ(result.datagrams_sent - result.datagrams_dropped,
            static_cast<u64>(crash_seq));
}

INSTANTIATE_TEST_SUITE_P(
    AllCampaigns, CampaignInvariantsTest,
    ::testing::Combine(::testing::Values(isa::Arch::kCisca, isa::Arch::kRiscf),
                       ::testing::Values(CampaignKind::kStack,
                                         CampaignKind::kRegister,
                                         CampaignKind::kData,
                                         CampaignKind::kCode)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == isa::Arch::kCisca
                             ? "cisca_"
                             : "riscf_") +
             campaign_kind_name(std::get<1>(info.param));
    });

TEST(CampaignIntegrationTest, CodeCampaignsActivateMostTargets) {
  // Code targets are chosen from profiled hot functions, so most
  // breakpoints are reached (paper: 54.9% / 64.7% — ours are hotter
  // because the profile covers exactly the benchmarked window).
  for (const auto arch : {isa::Arch::kCisca, isa::Arch::kRiscf}) {
    const auto result = run_campaign(small_spec(arch, CampaignKind::kCode, 60));
    const OutcomeTally t = tally_records(result.records);
    EXPECT_GT(t.activation_rate(), 0.5) << isa::arch_name(arch);
  }
}

TEST(CampaignIntegrationTest, HeadlineContrastStackManifestation) {
  // The paper's headline: P4 stack errors manifest far more than G4's
  // (56% vs 21%).  At small scale we assert the direction with margin.
  const auto p4 =
      tally_records(run_campaign(small_spec(isa::Arch::kCisca,
                                            CampaignKind::kStack, 150, 5))
                        .records);
  const auto g4 =
      tally_records(run_campaign(small_spec(isa::Arch::kRiscf,
                                            CampaignKind::kStack, 150, 5))
                        .records);
  EXPECT_GT(p4.manifestation_rate(), g4.manifestation_rate());
}

TEST(CampaignIntegrationTest, G4StackCrashesIncludeStackOverflow) {
  // Stack Overflow must appear on the G4 and never on the P4 (Figure 6).
  const auto g4 =
      tally_records(run_campaign(small_spec(isa::Arch::kRiscf,
                                            CampaignKind::kStack, 200, 9))
                        .records);
  const auto p4 =
      tally_records(run_campaign(small_spec(isa::Arch::kCisca,
                                            CampaignKind::kStack, 200, 9))
                        .records);
  EXPECT_GT(g4.crash_causes.get("Stack Overflow") +
                g4.crash_causes.get("Bad Area"),
            0u);
  EXPECT_EQ(p4.crash_causes.get("Stack Overflow"), 0u);
}

TEST(CampaignIntegrationTest, WrapperAblationRemovesStackOverflow) {
  auto spec = small_spec(isa::Arch::kRiscf, CampaignKind::kStack, 150, 13);
  spec.machine.g4_stack_wrapper = false;
  const auto t = tally_records(run_campaign(spec).records);
  EXPECT_EQ(t.crash_causes.get("Stack Overflow"), 0u);
}

TEST(CampaignIntegrationTest, LossyChannelProducesUnknownCrashes) {
  auto spec = small_spec(isa::Arch::kCisca, CampaignKind::kCode, 80, 3);
  spec.channel_loss = 1.0;  // every crash dump is lost
  const auto result = run_campaign(spec);
  const auto t = tally_records(result.records);
  EXPECT_EQ(t.count(OutcomeCategory::kKnownCrash), 0u);
  EXPECT_GT(t.count(OutcomeCategory::kHangOrUnknownCrash), 0u);
  EXPECT_EQ(result.datagrams_dropped, result.datagrams_sent);
}

TEST(CampaignIntegrationTest, HotFunctionsAreReportedWithTheResult) {
  const auto result =
      run_campaign(small_spec(isa::Arch::kCisca, CampaignKind::kCode, 10));
  ASSERT_FALSE(result.hot_functions.empty());
  EXPECT_GE(result.hot_functions.back().cumulative, 0.95);
}

}  // namespace
}  // namespace kfi::inject
