// Deterministic reproductions of the paper's worked examples as tests:
// Figure 7 (re-grouped epilogue -> undetected ESP corruption), Figure 9
// (G4 stack error -> fast bad-area crash), Figure 13 (spinlock magic ->
// invalid instruction), Figure 15 (mflr -> lhax), and the Section 5.2
// register scenarios (CR0.PE -> #GP, NT -> #TS, MSR.IR -> machine check,
// HID0.BTIC -> illegal instruction, SPRG2 -> wild exception entry).
#include <gtest/gtest.h>

#include "cisca/regs.hpp"
#include "inject/campaign.hpp"
#include "kernel/machine.hpp"
#include "riscf/regs.hpp"
#include "workload/workload.hpp"

namespace kfi {
namespace {

using inject::CampaignKind;
using inject::InjectionTarget;
using inject::OutcomeCategory;
using kernel::CrashCause;
using kernel::Machine;
using kernel::MachineOptions;

InjectionTarget register_target(Machine& machine, const std::string& name,
                                u32 bit, double at = 0.3) {
  return InjectionTarget::sysreg(machine.cpu().sysregs().index_of(name), bit,
                                 at);
}

TEST(WorkedExamplesTest, Figure13SpinlockMagicIsInvalidInstruction) {
  for (const auto arch : {isa::Arch::kCisca, isa::Arch::kRiscf}) {
    Machine machine(arch, MachineOptions{});
    auto wl = workload::make_suite();
    const auto& lock = machine.image().object("kernel_flag_cacheline");
    const InjectionTarget t = InjectionTarget::data(
        lock.addr + lock.field_named("magic").offset, 22);
    const auto record = inject::run_single_injection(machine, *wl, t, 5);
    ASSERT_EQ(record.outcome, OutcomeCategory::kKnownCrash);
    EXPECT_EQ(record.crash.cause, arch == isa::Arch::kCisca
                                      ? CrashCause::kInvalidInstruction
                                      : CrashCause::kIllegalInstruction);
    // Detection is quick: the lock is checked on every system call.
    EXPECT_LT(record.cycles_to_crash, 100'000u);
  }
}

TEST(WorkedExamplesTest, Section52Cr0PeClearIsGeneralProtection) {
  Machine machine(isa::Arch::kCisca, MachineOptions{});
  auto wl = workload::make_suite();
  const auto record = inject::run_single_injection(
      machine, *wl, register_target(machine, "CR0", cisca::kCr0PE), 7);
  ASSERT_EQ(record.outcome, OutcomeCategory::kKnownCrash);
  EXPECT_EQ(record.crash.cause, CrashCause::kGeneralProtection);
}

TEST(WorkedExamplesTest, Section52NtFlagIsInvalidTss) {
  Machine machine(isa::Arch::kCisca, MachineOptions{});
  auto wl = workload::make_suite();
  const auto record = inject::run_single_injection(
      machine, *wl, register_target(machine, "EFLAGS", cisca::kFlagNT), 7);
  // The flip may land in the user-context window (then it is replaced at
  // kernel entry); when it lands in kernel context, the next interrupt
  // return raises #TS.
  if (record.outcome == OutcomeCategory::kKnownCrash) {
    EXPECT_EQ(record.crash.cause, CrashCause::kInvalidTss);
  }
}

TEST(WorkedExamplesTest, Section52EspFlipIsInvalidMemoryAccess) {
  Machine machine(isa::Arch::kCisca, MachineOptions{});
  auto wl = workload::make_suite();
  // Find a seed where the context-register flip lands in kernel context.
  for (u64 seed = 1; seed < 12; ++seed) {
    const auto record = inject::run_single_injection(
        machine, *wl, register_target(machine, "ESP", 27), seed);
    if (record.outcome == OutcomeCategory::kKnownCrash) {
      EXPECT_TRUE(record.crash.cause == CrashCause::kNullPointer ||
                  record.crash.cause == CrashCause::kBadPaging ||
                  record.crash.cause == CrashCause::kGeneralProtection)
          << crash_cause_name(record.crash.cause);
      return;
    }
  }
  FAIL() << "ESP flip never manifested across seeds";
}

TEST(WorkedExamplesTest, Section52MsrIrClearIsMachineCheck) {
  Machine machine(isa::Arch::kRiscf, MachineOptions{});
  auto wl = workload::make_suite();
  // MSR.IR is bit 5 (0x20).
  const auto record = inject::run_single_injection(
      machine, *wl, register_target(machine, "MSR", 5), 7);
  if (record.outcome == OutcomeCategory::kKnownCrash) {
    EXPECT_EQ(record.crash.cause, CrashCause::kMachineCheck);
    EXPECT_LT(record.cycles_to_crash, 10'000u);  // "immediately crash"
  }
}

TEST(WorkedExamplesTest, Section52Hid0BticIsIllegalInstruction) {
  Machine machine(isa::Arch::kRiscf, MachineOptions{});
  auto wl = workload::make_suite();
  // HID0.BTIC is bit 5 (0x20): enables the branch target instruction
  // cache over invalid contents.
  const auto record = inject::run_single_injection(
      machine, *wl, register_target(machine, "HID0", 5), 7);
  ASSERT_EQ(record.outcome, OutcomeCategory::kKnownCrash);
  EXPECT_EQ(record.crash.cause, CrashCause::kIllegalInstruction);
}

TEST(WorkedExamplesTest, Section52Sprg2CorruptionCrashesOnUserInterrupt) {
  Machine machine(isa::Arch::kRiscf, MachineOptions{});
  auto wl = workload::make_suite();
  const auto record = inject::run_single_injection(
      machine, *wl, register_target(machine, "SPRG2", 17), 7);
  ASSERT_EQ(record.outcome, OutcomeCategory::kKnownCrash);
  // "can force the operating system to try executing from a random memory
  // location": illegal instruction or bad area, after up to a timer
  // period of latency.
  EXPECT_TRUE(record.crash.cause == CrashCause::kIllegalInstruction ||
              record.crash.cause == CrashCause::kBadArea ||
              record.crash.cause == CrashCause::kStackOverflow)
      << crash_cause_name(record.crash.cause);
}

TEST(WorkedExamplesTest, InertRegistersNeverManifest) {
  // Debug/performance/thermal registers: flips must be harmless, as the
  // paper found for the majority of the register banks.
  for (const auto arch : {isa::Arch::kCisca, isa::Arch::kRiscf}) {
    Machine machine(arch, MachineOptions{});
    auto wl = workload::make_suite();
    const char* inert = arch == isa::Arch::kCisca ? "DR3" : "THRM2";
    const auto record = inject::run_single_injection(
        machine, *wl, register_target(machine, inert, 13), 7);
    EXPECT_EQ(record.outcome, OutcomeCategory::kNotManifested)
        << isa::arch_name(arch);
  }
}

TEST(WorkedExamplesTest, Figure9StackWordCrashIsFastOnG4) {
  // Corrupt live stack words of the journal thread; when a crash occurs
  // it must be a bad-area/stack-overflow with short latency (Figure 9:
  // 1592 cycles in the paper, versus millions on the P4).
  Machine machine(isa::Arch::kRiscf, MachineOptions{});
  auto wl = workload::make_suite();
  for (u64 seed = 1; seed < 30; ++seed) {
    const InjectionTarget t = InjectionTarget::stack(
        /*task=*/2 /*kjournald*/, 0.9 + (seed % 7) * 0.01, (seed * 11) % 32,
        0.4);
    const auto record = inject::run_single_injection(machine, *wl, t, seed);
    if (record.outcome == OutcomeCategory::kKnownCrash) {
      EXPECT_TRUE(record.crash.cause == CrashCause::kBadArea ||
                  record.crash.cause == CrashCause::kStackOverflow ||
                  record.crash.cause == CrashCause::kAlignment ||
                  record.crash.cause == CrashCause::kIllegalInstruction)
          << crash_cause_name(record.crash.cause);
      return;
    }
  }
  GTEST_SKIP() << "no crash across seeds (all flips benign)";
}

}  // namespace
}  // namespace kfi
