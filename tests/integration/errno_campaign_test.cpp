// End-to-end contract of the errno campaign family (ISSUE 7):
//   * determinism — serial and parallel runs of the same errno plan merge
//     bit-identically, for both arches, both triggers, jobs in {1, 4};
//   * cascade records — every run carries a valid CascadeSummary, forces
//     actually happen, and the per-syscall tallies are populated;
//   * kill/resume — an errno campaign cancelled mid-flight and resumed
//     from its v4 journal matches the uninterrupted fingerprint;
//   * seam parity — installing a disabled ErrnoInjector on a physical
//     campaign's rigs (RunControl::errno_hook_probe) leaves the result
//     fingerprint byte-identical, so the hook costs legacy campaigns
//     nothing.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <string>
#include <tuple>

#include "analysis/cascade.hpp"
#include "errnoinj/errno_model.hpp"
#include "inject/campaign.hpp"
#include "inject/journal.hpp"

namespace kfi::inject {
namespace {

std::string tmp_journal(const std::string& tag) {
  return (std::filesystem::temp_directory_path() / ("kfi_errno_" + tag))
      .string();
}

CampaignSpec errno_spec(isa::Arch arch,
                        errnoinj::ErrnoTrigger trigger =
                            errnoinj::ErrnoTrigger::kNth,
                        u32 injections = 24) {
  CampaignSpec spec;
  spec.arch = arch;
  spec.kind = CampaignKind::kErrno;
  spec.injections = injections;
  spec.seed = 77;
  std::string bad;
  spec.errno_model.syscalls = *errnoinj::parse_syscall_list("read,write", &bad);
  spec.errno_model.trigger = trigger;
  if (trigger == errnoinj::ErrnoTrigger::kRate) spec.errno_model.rate = 2.0;
  return spec;
}

class ErrnoCampaignTest
    : public ::testing::TestWithParam<std::tuple<isa::Arch,
                                                 errnoinj::ErrnoTrigger>> {};

TEST_P(ErrnoCampaignTest, ParallelIsBitIdenticalAndCascadesAreRecorded) {
  const auto& [arch, trigger] = GetParam();
  const CampaignPlan plan = build_campaign_plan(errno_spec(arch, trigger));
  EXPECT_GT(plan.eligible_invocations, 0u);

  const CampaignResult serial = CampaignEngine(1).run(plan);
  const CampaignResult parallel = CampaignEngine(4).run(plan);
  EXPECT_EQ(result_fingerprint(serial), result_fingerprint(parallel));

  // Every completed record carries a cascade summary; the campaign as a
  // whole must deliver forces (the schedule is drawn to hit the run).
  ASSERT_EQ(serial.records.size(), plan.targets.size());
  u32 forced_runs = 0;
  for (const InjectionRecord& r : serial.records) {
    EXPECT_TRUE(r.cascade_valid);
    if (r.cascade.forced > 0) ++forced_runs;
  }
  EXPECT_GT(forced_runs, 0u);

  // Cascade analysis sees the same structure: a populated overall tally
  // and at least one per-syscall row (read and/or write).
  const analysis::CascadeTally tally = analysis::tally_cascades(serial.records);
  EXPECT_EQ(tally.forced_runs, forced_runs);
  EXPECT_EQ(tally.classified(),
            tally.contained + tally.propagated + tally.silent);
  const auto by_syscall = analysis::tally_cascades_by_syscall(serial.records);
  EXPECT_GE(by_syscall.size(), 1u);
  for (const auto& [name, t] : by_syscall) {
    EXPECT_TRUE(name == "read" || name == "write") << name;
    EXPECT_GT(t.forced_runs, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ArchesAndTriggers, ErrnoCampaignTest,
    ::testing::Combine(::testing::Values(isa::Arch::kCisca, isa::Arch::kRiscf),
                       ::testing::Values(errnoinj::ErrnoTrigger::kNth,
                                         errnoinj::ErrnoTrigger::kRate)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == isa::Arch::kCisca
                             ? "cisca_"
                             : "riscf_") +
             (std::get<1>(info.param) == errnoinj::ErrnoTrigger::kNth
                  ? "nth"
                  : "rate");
    });

class ErrnoKillResumeTest
    : public ::testing::TestWithParam<std::tuple<isa::Arch, u32>> {};

TEST_P(ErrnoKillResumeTest, ResumedErrnoCampaignIsBitIdentical) {
  const auto& [arch, jobs] = GetParam();
  const CampaignPlan plan = build_campaign_plan(errno_spec(arch));
  const std::string path =
      tmp_journal("resume_" + std::to_string(static_cast<int>(arch)) + "_" +
                  std::to_string(jobs) + ".kfij");
  std::filesystem::remove(path);

  const CampaignResult reference = CampaignEngine(1).run(plan);
  const u64 want = result_fingerprint(reference);

  {
    InjectionJournal journal = InjectionJournal::create(path, plan);
    EXPECT_EQ(journal.version(), kJournalVersion);
    std::atomic<bool> cancel{false};
    RunControl ctl;
    ctl.journal = &journal;
    ctl.cancel = &cancel;
    const CampaignResult partial = CampaignEngine(jobs).run(
        plan,
        [&cancel](u32 done, u32) {
          if (done >= 4) cancel.store(true);
        },
        ctl);
    EXPECT_TRUE(partial.interrupted);
    EXPECT_GE(partial.executed(), 4u);
    EXPECT_LT(partial.executed(), plan.targets.size());
  }

  InjectionJournal journal = InjectionJournal::resume(path, plan);
  // Recovered entries round-tripped their cascade blocks through disk.
  for (const JournalEntry& e : journal.recovered()) {
    EXPECT_TRUE(e.record.cascade_valid) << "entry " << e.index;
  }
  RunControl ctl;
  ctl.journal = &journal;
  const CampaignResult resumed = CampaignEngine(jobs).run(plan, {}, ctl);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.executed(), plan.targets.size());
  EXPECT_EQ(result_fingerprint(resumed), want);
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(
    ArchesAndJobs, ErrnoKillResumeTest,
    ::testing::Combine(::testing::Values(isa::Arch::kCisca, isa::Arch::kRiscf),
                       ::testing::Values(1u, 4u)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == isa::Arch::kCisca
                             ? "cisca_jobs"
                             : "riscf_jobs") +
             std::to_string(std::get<1>(info.param));
    });

class ErrnoHookProbeParityTest
    : public ::testing::TestWithParam<std::tuple<isa::Arch, u32>> {};

TEST_P(ErrnoHookProbeParityTest, InactiveHookLeavesPhysicalCampaignsIntact) {
  // Satellite 2: the syscall_result_hook seam must be invisible when the
  // hook is installed but never forces — a physical data campaign run with
  // a disabled ErrnoInjector on every rig fingerprints identically to the
  // plain run.
  const auto& [arch, jobs] = GetParam();
  CampaignSpec spec;
  spec.arch = arch;
  spec.kind = CampaignKind::kData;
  spec.injections = 16;
  spec.seed = 77;
  const CampaignPlan plan = build_campaign_plan(spec);

  const CampaignResult plain = CampaignEngine(jobs).run(plan);
  RunControl ctl;
  ctl.errno_hook_probe = true;
  const CampaignResult probed = CampaignEngine(jobs).run(plan, {}, ctl);
  EXPECT_EQ(result_fingerprint(plain), result_fingerprint(probed));
}

INSTANTIATE_TEST_SUITE_P(
    ArchesAndJobs, ErrnoHookProbeParityTest,
    ::testing::Combine(::testing::Values(isa::Arch::kCisca, isa::Arch::kRiscf),
                       ::testing::Values(1u, 4u)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == isa::Arch::kCisca
                             ? "cisca_jobs"
                             : "riscf_jobs") +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace kfi::inject
