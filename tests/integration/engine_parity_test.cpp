// The campaign engine's determinism contract: a parallel campaign is
// bit-identical to the serial campaign for the same CampaignSpec —
// records (every field, in target order), tallies, and the merged
// reboot / datagram / drop counters — across both arches and all four
// campaign kinds.
#include <gtest/gtest.h>

#include "analysis/tally.hpp"
#include "inject/campaign.hpp"

namespace kfi::inject {
namespace {

using analysis::OutcomeTally;
using analysis::tally_records;

CampaignSpec parity_spec(isa::Arch arch, CampaignKind kind) {
  CampaignSpec spec;
  spec.arch = arch;
  spec.kind = kind;
  spec.injections = 24;
  spec.seed = 77;
  return spec;
}

void expect_records_bit_identical(const std::vector<InjectionRecord>& a,
                                  const std::vector<InjectionRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("record " + std::to_string(i));
    // Target (the plan is shared, but the merge must keep target order).
    EXPECT_EQ(a[i].target.kind, b[i].target.kind);
    EXPECT_EQ(a[i].target.code_entry, b[i].target.code_entry);
    EXPECT_EQ(a[i].target.function, b[i].target.function);
    EXPECT_EQ(a[i].target.reg_name, b[i].target.reg_name);
    ASSERT_EQ(a[i].target.sites.size(), b[i].target.sites.size());
    for (size_t j = 0; j < a[i].target.sites.size(); ++j) {
      EXPECT_EQ(a[i].target.sites[j].addr, b[i].target.sites[j].addr);
      EXPECT_EQ(a[i].target.sites[j].bit, b[i].target.sites[j].bit);
      EXPECT_EQ(a[i].target.sites[j].task, b[i].target.sites[j].task);
      EXPECT_EQ(a[i].target.sites[j].reg_index,
                b[i].target.sites[j].reg_index);
      EXPECT_EQ(a[i].target.sites[j].at_frac, b[i].target.sites[j].at_frac);
    }
    // Outcome and activation.
    EXPECT_EQ(a[i].outcome, b[i].outcome);
    EXPECT_EQ(a[i].activated, b[i].activated);
    EXPECT_EQ(a[i].activation_known, b[i].activation_known);
    EXPECT_EQ(a[i].activation_cycle, b[i].activation_cycle);
    EXPECT_EQ(a[i].latency_base_cycle, b[i].latency_base_cycle);
    // Crash data, including the channel's per-run loss decision.
    EXPECT_EQ(a[i].crashed, b[i].crashed);
    EXPECT_EQ(a[i].crash_report_received, b[i].crash_report_received);
    EXPECT_EQ(a[i].crash.cause, b[i].crash.cause);
    EXPECT_EQ(a[i].crash.pc, b[i].crash.pc);
    EXPECT_EQ(a[i].crash.addr, b[i].crash.addr);
    EXPECT_EQ(a[i].crash.has_addr, b[i].crash.has_addr);
    EXPECT_EQ(a[i].crash.detail, b[i].crash.detail);
    EXPECT_EQ(a[i].cycles_to_crash, b[i].cycles_to_crash);
    EXPECT_EQ(a[i].syscalls_completed, b[i].syscalls_completed);
  }
}

void expect_campaigns_bit_identical(const CampaignResult& serial,
                                    const CampaignResult& parallel) {
  EXPECT_EQ(serial.nominal_cycles, parallel.nominal_cycles);
  EXPECT_EQ(serial.kernel_fraction, parallel.kernel_fraction);
  EXPECT_EQ(serial.hot_functions.size(), parallel.hot_functions.size());
  expect_records_bit_identical(serial.records, parallel.records);
  // Merged counters.
  EXPECT_EQ(serial.reboots, parallel.reboots);
  EXPECT_EQ(serial.datagrams_sent, parallel.datagrams_sent);
  EXPECT_EQ(serial.datagrams_dropped, parallel.datagrams_dropped);
  EXPECT_EQ(serial.throughput.simulated_cycles,
            parallel.throughput.simulated_cycles);
  // Tallies.
  const OutcomeTally st = tally_records(serial.records);
  const OutcomeTally pt = tally_records(parallel.records);
  EXPECT_EQ(st.injected, pt.injected);
  EXPECT_EQ(st.activated, pt.activated);
  EXPECT_EQ(st.activation_known, pt.activation_known);
  for (u32 c = 0; c < static_cast<u32>(OutcomeCategory::kNumOutcomes); ++c) {
    EXPECT_EQ(st.outcomes[c], pt.outcomes[c]) << "outcome category " << c;
  }
}

class EngineParityTest
    : public ::testing::TestWithParam<std::tuple<isa::Arch, CampaignKind>> {};

TEST_P(EngineParityTest, ParallelIsBitIdenticalToSerial) {
  const auto& [arch, kind] = GetParam();
  const CampaignPlan plan = build_campaign_plan(parity_spec(arch, kind));
  const CampaignResult serial = CampaignEngine(1).run(plan);
  const CampaignResult parallel = CampaignEngine(4).run(plan);
  EXPECT_EQ(parallel.throughput.jobs, 4u);
  expect_campaigns_bit_identical(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(
    AllCampaigns, EngineParityTest,
    ::testing::Combine(::testing::Values(isa::Arch::kCisca, isa::Arch::kRiscf),
                       ::testing::Values(CampaignKind::kStack,
                                         CampaignKind::kRegister,
                                         CampaignKind::kData,
                                         CampaignKind::kCode)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == isa::Arch::kCisca
                             ? "cisca_"
                             : "riscf_") +
             campaign_kind_name(std::get<1>(info.param));
    });

TEST(EngineParityTest, RunCampaignFullPathParity) {
  // The one-call path (plan rebuilt per call) is also jobs-independent.
  const auto spec = parity_spec(isa::Arch::kRiscf, CampaignKind::kStack);
  const CampaignResult serial = run_campaign(spec);
  const CampaignResult parallel = run_campaign(spec, {}, 3);
  expect_campaigns_bit_identical(serial, parallel);
}

TEST(EngineParityTest, ProgressReportsEveryInjectionExactlyOnce) {
  const CampaignPlan plan =
      build_campaign_plan(parity_spec(isa::Arch::kCisca, CampaignKind::kData));
  std::vector<u32> seen;
  CampaignEngine(4).run(plan, [&seen](u32 done, u32 total) {
    EXPECT_EQ(total, 24u);
    seen.push_back(done);
  });
  ASSERT_EQ(seen.size(), 24u);
  for (u32 i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], i + 1);  // serialized, monotone completion counts
  }
}

}  // namespace
}  // namespace kfi::inject
