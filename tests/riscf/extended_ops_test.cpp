// Semantics of the riscf realistic-density additions (the instructions a
// corrupted G4 kernel is likely to stumble into): FP loads/stores with
// memory side effects, update-form loads, trap-immediate, rotate-insert,
// sign extension, high multiplies, and the cache-block zero.
#include <gtest/gtest.h>

#include "mem/address_space.hpp"
#include "riscf/cpu.hpp"
#include "riscf/encode.hpp"

namespace kfi::riscf {
namespace {

constexpr Addr kCode = 0x10000;
constexpr Addr kData = 0x20000;
constexpr Addr kStackTop = 0x31000;

class RiscfExtendedOpsTest : public ::testing::Test {
 protected:
  RiscfExtendedOpsTest() : space_(256 * 1024, mem::Endian::kBig), cpu_(space_) {
    space_.map_region("code", kCode, 4096,
                      {.read = true, .write = false, .execute = true});
    space_.map_region("data", kData, 4096, {.read = true, .write = true});
    space_.map_region("stack", kStackTop - 4096, 4096,
                      {.read = true, .write = true});
    cpu_.regs().gpr[kSp] = kStackTop;
  }

  void load(Asm& a) {
    const std::vector<u8> bytes = a.finish();
    space_.vwrite_bytes(kCode, bytes.data(), static_cast<u32>(bytes.size()));
    cpu_.set_pc(kCode);
  }

  isa::StepResult run(u32 max_steps = 200) {
    for (u32 i = 0; i < max_steps; ++i) {
      const isa::StepResult r = cpu_.step();
      if (r.status != isa::StepStatus::kOk) return r;
    }
    ADD_FAILURE() << "did not stop";
    return {};
  }

  Cause trap_cause(const isa::StepResult& r) {
    EXPECT_EQ(r.status, isa::StepStatus::kTrap);
    return static_cast<Cause>(r.trap.cause);
  }

  u32 word(u32 opcd, u32 rt, u32 ra, u32 d16) {
    return (opcd << 26) | (rt << 21) | (ra << 16) | (d16 & 0xFFFF);
  }

  mem::AddressSpace space_;
  RiscfCpu cpu_;
};

TEST_F(RiscfExtendedOpsTest, LbzuLoadsAndUpdatesBase) {
  Asm a(kCode);
  a.li32(10, kData);
  a.emit_word(word(35, 3, 10, 5));  // lbzu r3, 5(r10)
  a.sc();
  load(a);
  space_.vwrite8(kData + 5, 0x7E);
  run();
  EXPECT_EQ(cpu_.regs().gpr[3], 0x7Eu);
  EXPECT_EQ(cpu_.regs().gpr[10], kData + 5);  // update form
}

TEST_F(RiscfExtendedOpsTest, TwiTrapsOnCondition) {
  Asm a(kCode);
  a.li(4, 3);
  // twi 16(lt), r4, 5: traps because 3 < 5.
  a.emit_word(word(3, 16, 4, 5));
  load(a);
  EXPECT_EQ(trap_cause(run()), Cause::kTrapWord);
}

TEST_F(RiscfExtendedOpsTest, TwiDoesNotTrapWhenConditionFalse) {
  Asm a(kCode);
  a.li(4, 9);
  a.emit_word(word(3, 16, 4, 5));  // 9 < 5 is false
  a.sc();
  load(a);
  EXPECT_EQ(trap_cause(run()), Cause::kSyscall);
}

TEST_F(RiscfExtendedOpsTest, SubficSubtractsFromImmediate) {
  Asm a(kCode);
  a.li(4, 10);
  a.emit_word(word(8, 3, 4, 30));  // subfic r3, r4, 30 -> 20
  a.sc();
  load(a);
  run();
  EXPECT_EQ(cpu_.regs().gpr[3], 20u);
}

TEST_F(RiscfExtendedOpsTest, FpLoadFaultsLikeAnyMemoryAccess) {
  // The Figure-15 class: corrupted code becomes an FP load; the memory
  // access (and its fault) is real even though FP state is not modeled.
  Asm a(kCode);
  a.li32(8, 0x44);  // near-NULL
  a.emit_word(word(48, 1, 8, 12));  // lfs f1, 12(r8)
  load(a);
  const auto r = run();
  EXPECT_EQ(trap_cause(r), Cause::kDataStorage);
  EXPECT_EQ(r.trap.addr, 0x50u);
}

TEST_F(RiscfExtendedOpsTest, StfdWritesEightBytes) {
  Asm a(kCode);
  a.li32(8, kData + 0x20);
  a.emit_word(word(54, 2, 8, 0));  // stfd f2, 0(r8)
  a.sc();
  load(a);
  space_.vwrite32(kData + 0x20, 0xAAAAAAAAu);
  space_.vwrite32(kData + 0x24, 0xBBBBBBBBu);
  run();
  // The unmodeled FP register contents are written as zeros: corruption.
  EXPECT_EQ(space_.vread32(kData + 0x20), 0u);
  EXPECT_EQ(space_.vread32(kData + 0x24), 0u);
}

TEST_F(RiscfExtendedOpsTest, RlwimiInsertsUnderMask) {
  Asm a(kCode);
  a.li32(4, 0x000000FFu);   // source
  a.li32(3, 0xAAAAAAAAu);   // target
  // rlwimi r3, r4, 8, 16, 23: rotate source by 8, insert bits 16-23.
  a.emit_word((20u << 26) | (4u << 21) | (3u << 16) | (8u << 11) |
              (16u << 6) | (23u << 1));
  a.sc();
  load(a);
  run();
  EXPECT_EQ(cpu_.regs().gpr[3], 0xAAAAFFAAu);
}

TEST_F(RiscfExtendedOpsTest, ExtsbAndExtshSignExtend) {
  Asm a(kCode);
  a.li32(4, 0x80);
  a.emit_word((31u << 26) | (4u << 21) | (3u << 16) | (954u << 1));  // extsb
  a.li32(5, 0x8000);
  a.emit_word((31u << 26) | (5u << 21) | (6u << 16) | (922u << 1));  // extsh
  a.sc();
  load(a);
  run();
  EXPECT_EQ(cpu_.regs().gpr[3], 0xFFFFFF80u);
  EXPECT_EQ(cpu_.regs().gpr[6], 0xFFFF8000u);
}

TEST_F(RiscfExtendedOpsTest, MulhwComputesHighWord) {
  Asm a(kCode);
  a.li32(4, 0x10000);
  a.li32(5, 0x10000);
  a.emit_word((31u << 26) | (3u << 21) | (4u << 16) | (5u << 11) |
              (75u << 1));  // mulhw r3, r4, r5
  a.sc();
  load(a);
  run();
  EXPECT_EQ(cpu_.regs().gpr[3], 1u);  // (2^16)^2 >> 32
}

TEST_F(RiscfExtendedOpsTest, FpArithIsATimingNoOp) {
  Asm a(kCode);
  a.emit_word(59u << 26);  // some FP single arith encoding
  a.emit_word(63u << 26);  // some FP double arith encoding
  a.emit_word(4u << 26);   // AltiVec
  a.sc();
  load(a);
  EXPECT_EQ(trap_cause(run()), Cause::kSyscall);
}

TEST_F(RiscfExtendedOpsTest, StmwFaultsPartwayThroughOnBadMemory) {
  // Store-multiple into memory that runs off the mapped page: faults at
  // the exact failing word (a potent corruption+crash combo for
  // flipped-opcode scenarios).
  Asm a(kCode);
  a.li32(10, kData + 4096 - 8);  // two words before the page end
  a.emit_word((47u << 26) | (28u << 21) | (10u << 16) | 0);  // stmw r28
  load(a);
  const auto r = run();
  EXPECT_EQ(trap_cause(r), Cause::kDataStorage);
  EXPECT_EQ(r.trap.addr, kData + 4096u);
  // The first two stores happened before the fault.
  EXPECT_EQ(space_.vread32(kData + 4096 - 8), cpu_.regs().gpr[28]);
}

TEST_F(RiscfExtendedOpsTest, MftbReadsCycleCounter) {
  Asm a(kCode);
  a.nop();
  a.nop();
  a.emit_word((31u << 26) | (3u << 21) | (371u << 1));  // mftb r3
  a.sc();
  load(a);
  run();
  EXPECT_GT(cpu_.regs().gpr[3], 0u);
}

}  // namespace
}  // namespace kfi::riscf
