// Functional-unit classification of riscf instructions against
// hand-decoded 32-bit words (real PowerPC encodings), plus the
// predecode-cache side of opclass targeting: corrupting a cached
// instruction so it changes class must force a re-decode.
#include <gtest/gtest.h>

#include "mem/address_space.hpp"
#include "riscf/cpu.hpp"
#include "riscf/insn.hpp"

namespace kfi::riscf {
namespace {

struct ClassedWord {
  u32 word;
  Op op;
  isa::OpClass cls;
};

TEST(RiscfOpClassTest, HandDecodedWordsClassify) {
  const ClassedWord cases[] = {
      // ALU.
      {0x38600001, Op::kAddi, isa::OpClass::kAlu},   // addi r3, r0, 1
      {0x7C632214, Op::kAdd, isa::OpClass::kAlu},    // add r3, r3, r4
      {0x7C631838, Op::kAnd, isa::OpClass::kAlu},    // and r3, r3, r3
      {0x2C030000, Op::kCmpwi, isa::OpClass::kAlu},  // cmpwi r3, 0
      {0x5463083C, Op::kRlwinm, isa::OpClass::kAlu}, // rlwinm r3,r3,1,0,30
      // Load/store.
      {0x80610004, Op::kLwz, isa::OpClass::kLoadStore},  // lwz r3, 4(r1)
      {0x90610000, Op::kStw, isa::OpClass::kLoadStore},  // stw r3, 0(r1)
      {0x88610000, Op::kLbz, isa::OpClass::kLoadStore},  // lbz r3, 0(r1)
      {0x7C61222E, Op::kLhzx, isa::OpClass::kLoadStore}, // lhzx r3,r1,r4
      // Branch.
      {0x48000008, Op::kB, isa::OpClass::kBranch},     // b +8
      {0x41820008, Op::kBc, isa::OpClass::kBranch},    // beq +8
      {0x4E800020, Op::kBclr, isa::OpClass::kBranch},  // blr
      // System.
      {0x44000002, Op::kSc, isa::OpClass::kSystem},     // sc
      {0x7C0802A6, Op::kMfspr, isa::OpClass::kSystem},  // mflr r0
      {0x7C0004AC, Op::kSync, isa::OpClass::kSystem},   // sync
      // Other: the all-zero illegal word.
      {0x00000000, Op::kInvalid, isa::OpClass::kOther},
  };
  for (const auto& c : cases) {
    const Insn insn = decode(c.word);
    EXPECT_EQ(insn.op, c.op) << std::hex << c.word << " " << insn.to_string();
    EXPECT_EQ(opclass(insn.op), c.cls) << insn.to_string();
  }
}

TEST(RiscfOpClassTest, EveryOpHasAClassBelowNumClasses) {
  for (u32 raw = 0; raw <= static_cast<u32>(Op::kMcrf); ++raw) {
    const auto cls = opclass(static_cast<Op>(raw));
    EXPECT_LT(static_cast<u32>(cls),
              static_cast<u32>(isa::OpClass::kNumClasses));
  }
}

TEST(RiscfOpClassTest, CorruptedCachedInsnMigratesClassAndReDecodes) {
  // Flipping the MSB of `addi r3, r0, 1` (opcode 14) yields opcode 46 —
  // `lmw`, a load/store — so one injected bit moves the instruction from
  // the ALU class to load/store.  The predecoded copy of the addi must
  // not survive the flip.
  constexpr Addr kCode = 0x10000;
  mem::AddressSpace space{64 * 1024, mem::Endian::kBig};
  RiscfCpu cpu{space};
  cpu.set_decode_cache_enabled(true);
  space.map_region("code", kCode, 4096,
                   {.read = true, .write = true, .execute = true});
  const u32 addi = 0x38600001;
  space.vwrite32(kCode, addi);
  space.vwrite32(kCode + 4, 0x44000002);  // sc
  cpu.set_pc(kCode);
  for (int i = 0; i < 8 && cpu.step().status == isa::StepStatus::kOk; ++i) {
  }
  ASSERT_EQ(cpu.regs().gpr[3], 1u);
  ASSERT_EQ(opclass(decode(addi).op), isa::OpClass::kAlu);

  // Big-endian image: the opcode's top bit lives in byte 0, bit 7.
  space.vflip_bit(kCode, 7);
  const u32 corrupted = space.vread32(kCode);
  EXPECT_EQ(corrupted, 0xB8600001u);
  EXPECT_EQ(decode(corrupted).op, Op::kLmw);
  EXPECT_EQ(opclass(decode(corrupted).op), isa::OpClass::kLoadStore);

  // The next fetch must decode the corrupted word, not the cached addi.
  EXPECT_EQ(cpu.decode_at(kCode).op, Op::kLmw);
  cpu.set_pc(kCode);
  cpu.regs().gpr[3] = 0;
  for (int i = 0; i < 8 && cpu.step().status == isa::StepStatus::kOk; ++i) {
  }
  EXPECT_NE(cpu.regs().gpr[3], 1u);  // the addi is gone
}

}  // namespace
}  // namespace kfi::riscf
