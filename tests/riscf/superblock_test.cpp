// Superblock (multi-instruction trace) execution contract for riscf:
// dispatching a cached straight-line block through per-op handler pointers
// must be bit-identical to single-stepping — same register results, same
// cycle charges, same trap ordering — and a write into a cached block's
// page (an injected flip or the program's own store) must invalidate the
// block so the corrupted bytes re-decode.  Results are compared against a
// superblock-disabled CPU running the identical program.
#include <gtest/gtest.h>

#include "mem/address_space.hpp"
#include "riscf/cpu.hpp"
#include "riscf/encode.hpp"

namespace kfi::riscf {
namespace {

constexpr Addr kCode = 0x10000;

struct Rig {
  mem::AddressSpace space{256 * 1024, mem::Endian::kBig};
  RiscfCpu cpu{space};

  explicit Rig(bool superblocks) {
    space.map_region("code", kCode, 4096,
                     {.read = true, .write = true, .execute = true});
    cpu.set_superblocks_enabled(superblocks);
  }

  void load(const std::vector<u8>& bytes) {
    space.vwrite_bytes(kCode, bytes.data(), static_cast<u32>(bytes.size()));
    cpu.set_pc(kCode);
  }

  /// Drive the CPU the way the machine loop does: block dispatches with
  /// unbounded limits, stopping at the first non-kOk status.
  isa::StepResult run(u32 max_blocks = 200) {
    for (u32 i = 0; i < max_blocks; ++i) {
      u64 consumed = 1;
      const isa::StepResult r = cpu.step_block({}, &consumed);
      if (r.status != isa::StepStatus::kOk) return r;
    }
    ADD_FAILURE() << "did not stop";
    return {};
  }
};

std::vector<u8> straight_line_program() {
  Asm a(kCode);
  a.li(3, 1);  // kCode + 0
  a.li(4, 2);  // kCode + 4
  a.li(5, 3);  // kCode + 8: simm low byte at kCode + 11
  a.sc();
  return a.finish();
}

TEST(RiscfSuperblockTest, InjectorFlipMidBlockIsReDecoded) {
  // The flip lands on the THIRD instruction of an already-cached block —
  // the block must be rebuilt, not just its first entry.
  Rig warm(true), cold(false);
  for (Rig* rig : {&warm, &cold}) {
    rig->load(straight_line_program());
    rig->run();
    ASSERT_EQ(rig->cpu.regs().gpr[5], 3u);
    // The injector's path: flip bit 2 of the simm byte (3 -> 7).
    rig->space.vflip_bit(kCode + 11, 2);
    rig->cpu.set_pc(kCode);
    rig->run();
  }
  EXPECT_EQ(warm.cpu.regs().gpr[5], 7u);
  EXPECT_EQ(warm.cpu.regs().gpr[5], cold.cpu.regs().gpr[5]);
  EXPECT_GE(warm.cpu.superblock_stats().invalidations, 1u);
  EXPECT_EQ(cold.cpu.superblock_stats().dispatches, 0u);
}

TEST(RiscfSuperblockTest, SelfModifyingStoreIsReDecoded) {
  // Pass 1 executes `li r3, 1` (caching its block), stores the encoding
  // of `li r3, 7` over it, and branches back; pass 2 must execute the
  // patched word.
  Asm a(kCode);
  const auto start = a.new_label();
  const auto done = a.new_label();
  a.bind(start);
  a.li(3, 1);  // patched between passes
  a.cmpwi(4, 0);
  a.bne(done);
  a.li(4, 1);
  a.li32(5, 0x38600007u);  // addi r3, 0, 7
  a.li32(6, kCode);
  a.stw(5, 0, 6);
  a.b(start);
  a.bind(done);
  a.sc();
  const std::vector<u8> program = a.finish();

  Rig warm(true), cold(false);
  for (Rig* rig : {&warm, &cold}) {
    rig->load(program);
    rig->run();
  }
  EXPECT_EQ(warm.cpu.regs().gpr[3], 7u);
  EXPECT_EQ(warm.cpu.regs().gpr[3], cold.cpu.regs().gpr[3]);
  EXPECT_GE(warm.cpu.superblock_stats().invalidations, 1u);
}

TEST(RiscfSuperblockTest, UnmodifiedCodeHitsOnRedispatch) {
  Rig warm(true);
  warm.load(straight_line_program());
  warm.run();
  const auto first = warm.cpu.superblock_stats();
  EXPECT_GE(first.misses, 1u);
  warm.cpu.set_pc(kCode);
  warm.run();
  const auto second = warm.cpu.superblock_stats();
  EXPECT_EQ(second.misses, first.misses);  // re-dispatch came from the cache
  EXPECT_GT(second.hits, first.hits);
  EXPECT_EQ(second.invalidations, 0u);
  EXPECT_GT(second.mean_block_len(), 1.0);
}

TEST(RiscfSuperblockTest, BlockDispatchMatchesSingleSteppingInLockstep) {
  // Strongest equivalence check: after every block dispatch consuming k
  // iterations, k single steps on a superblock-free CPU must land in the
  // bit-identical register state at the same cycle count.
  Asm a(kCode);
  const auto start = a.new_label();
  const auto done = a.new_label();
  a.li(3, 0);
  a.li(4, 5);
  a.bind(start);
  a.cmpwi(4, 0);
  a.beq(done);
  a.li32(5, 0x1000);
  a.addi(3, 3, 7);
  a.addi(4, 4, -1);
  a.b(start);
  a.bind(done);
  a.sc();
  const std::vector<u8> program = a.finish();

  Rig blocked(true), stepped(false);
  blocked.load(program);
  stepped.load(program);
  for (u32 guard = 0; guard < 200; ++guard) {
    u64 consumed = 1;
    const isa::StepResult rb = blocked.cpu.step_block({}, &consumed);
    isa::StepResult rs;
    for (u64 k = 0; k < consumed; ++k) rs = stepped.cpu.step();
    ASSERT_EQ(rb.status, rs.status) << "dispatch " << guard;
    ASSERT_EQ(blocked.cpu.snapshot().words, stepped.cpu.snapshot().words)
        << "dispatch " << guard;
    ASSERT_EQ(blocked.cpu.cycles(), stepped.cpu.cycles())
        << "dispatch " << guard;
    if (rb.status != isa::StepStatus::kOk) return;
  }
  FAIL() << "did not stop";
}

TEST(RiscfSuperblockTest, MaxInsnsLimitBoundsTheDispatch) {
  // A step budget of 1 per dispatch degenerates to single-stepping.
  Rig rig(true);
  rig.load(straight_line_program());
  isa::BlockLimits limits;
  limits.max_insns = 1;
  for (u32 i = 0; i < 3; ++i) {
    u64 consumed = 0;
    ASSERT_EQ(rig.cpu.step_block(limits, &consumed).status,
              isa::StepStatus::kOk);
    EXPECT_EQ(consumed, 1u);
  }
  EXPECT_EQ(rig.cpu.regs().gpr[5], 3u);
}

TEST(RiscfSuperblockTest, CycleBoundStopsMidBlock) {
  // The first instruction of a dispatch always executes (the machine loop
  // already passed its cycle checks); the bound stops the block before
  // the next one, exactly like the loop would have.
  Rig rig(true);
  rig.load(straight_line_program());
  isa::BlockLimits limits;
  limits.cycle_bound = rig.cpu.cycles() + 1;
  u64 consumed = 0;
  ASSERT_EQ(rig.cpu.step_block(limits, &consumed).status,
            isa::StepStatus::kOk);
  EXPECT_EQ(consumed, 1u);
  EXPECT_EQ(rig.cpu.regs().gpr[3], 1u);
  EXPECT_EQ(rig.cpu.regs().gpr[4], 0u);  // second insn did not run
}

}  // namespace
}  // namespace kfi::riscf
