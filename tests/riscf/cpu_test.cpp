// Execution-semantics tests for the riscf (G4-like) CPU: arithmetic,
// condition register, memory and alignment behavior, supervisor state
// (MSR/SPR) semantics, the Table 4 exception classes, and snapshots.
#include <gtest/gtest.h>

#include "mem/address_space.hpp"
#include "riscf/cpu.hpp"
#include "riscf/encode.hpp"

namespace kfi::riscf {
namespace {

constexpr Addr kCode = 0x10000;
constexpr Addr kData = 0x20000;
constexpr Addr kStackTop = 0x31000;

class RiscfCpuTest : public ::testing::Test {
 protected:
  RiscfCpuTest() : space_(256 * 1024, mem::Endian::kBig), cpu_(space_) {
    space_.map_region("code", kCode, 4096,
                      {.read = true, .write = false, .execute = true});
    space_.map_region("data", kData, 4096, {.read = true, .write = true});
    space_.map_region("stack", kStackTop - 4096, 4096,
                      {.read = true, .write = true});
    space_.map_region("bus", 0x38000, 4096, {.bus = true});
    cpu_.regs().gpr[kSp] = kStackTop;
  }

  void load(Asm& a) {
    const std::vector<u8> bytes = a.finish();
    space_.vwrite_bytes(kCode, bytes.data(), static_cast<u32>(bytes.size()));
    cpu_.set_pc(kCode);
  }

  isa::StepResult run(u32 max_steps = 1000) {
    for (u32 i = 0; i < max_steps; ++i) {
      const isa::StepResult r = cpu_.step();
      if (r.status != isa::StepStatus::kOk) return r;
    }
    ADD_FAILURE() << "did not stop";
    return {};
  }

  Cause trap_cause(const isa::StepResult& r) {
    EXPECT_EQ(r.status, isa::StepStatus::kTrap);
    return static_cast<Cause>(r.trap.cause);
  }

  /// Run until the CPU traps (tests end code with an sc marker).
  u32& gpr(u8 r) { return cpu_.regs().gpr[r]; }

  mem::AddressSpace space_;
  RiscfCpu cpu_;
};

TEST_F(RiscfCpuTest, AddiChains) {
  Asm a(kCode);
  a.li(3, 40);
  a.addi(3, 3, 2);
  a.sc();
  load(a);
  EXPECT_EQ(trap_cause(run()), Cause::kSyscall);
  EXPECT_EQ(gpr(3), 42u);
}

TEST_F(RiscfCpuTest, Li32BuildsFullConstants) {
  Asm a(kCode);
  a.li32(5, 0xDEAD4EADu);
  a.li32(6, 0xC0200000u);
  a.li32(7, 42);
  a.sc();
  load(a);
  run();
  EXPECT_EQ(gpr(5), 0xDEAD4EADu);
  EXPECT_EQ(gpr(6), 0xC0200000u);
  EXPECT_EQ(gpr(7), 42u);
}

TEST_F(RiscfCpuTest, CompareAndBranch) {
  Asm a(kCode);
  const auto less = a.new_label();
  a.li(3, 5);
  a.cmpwi(3, 10);
  a.blt(less);
  a.li(4, 111);
  a.bind(less);
  a.li(5, 222);
  a.sc();
  load(a);
  run();
  EXPECT_EQ(gpr(4), 0u);  // skipped
  EXPECT_EQ(gpr(5), 222u);
}

TEST_F(RiscfCpuTest, UnsignedVersusSignedCompare) {
  Asm a(kCode);
  const auto a1 = a.new_label(), a2 = a.new_label();
  a.li32(3, 0xFFFFFFFFu);  // -1 signed, max unsigned
  a.cmpwi(3, 0);
  a.blt(a1);  // signed: -1 < 0 -> taken
  a.li(4, 1);
  a.bind(a1);
  a.cmplwi(3, 10);
  a.bgt(a2);  // unsigned: max > 10 -> taken
  a.li(5, 1);
  a.bind(a2);
  a.sc();
  load(a);
  run();
  EXPECT_EQ(gpr(4), 0u);
  EXPECT_EQ(gpr(5), 0u);
}

TEST_F(RiscfCpuTest, BlAndBlrLinkage) {
  Asm a(kCode);
  const auto fn = a.new_label();
  a.li(3, 1);
  a.bl(fn);
  a.sc();
  a.bind(fn);
  a.addi(3, 3, 10);
  a.blr();
  load(a);
  run();
  EXPECT_EQ(gpr(3), 11u);
}

TEST_F(RiscfCpuTest, StwuCreatesBackChain) {
  Asm a(kCode);
  a.stwu(kSp, -32, kSp);
  a.sc();
  load(a);
  run();
  EXPECT_EQ(gpr(kSp), kStackTop - 32);
  // The old SP is stored at the new SP: the back chain the epilogue idiom
  // (lwz r1,0(r1)) depends on.
  EXPECT_EQ(space_.vread32(kStackTop - 32), kStackTop);
}

TEST_F(RiscfCpuTest, LoadStoreWidthsBigEndian) {
  Asm a(kCode);
  a.li32(3, 0x11223344u);
  a.li32(10, kData);
  a.stw(3, 0, 10);
  a.lbz(4, 0, 10);   // big-endian: first byte is the MSB
  a.lbz(5, 3, 10);
  a.lhz(6, 2, 10);
  a.sc();
  load(a);
  run();
  EXPECT_EQ(gpr(4), 0x11u);
  EXPECT_EQ(gpr(5), 0x44u);
  EXPECT_EQ(gpr(6), 0x3344u);
}

TEST_F(RiscfCpuTest, LhaSignExtends) {
  Asm a(kCode);
  a.li32(3, 0x8000u);
  a.li32(10, kData);
  a.sth(3, 0, 10);
  a.lha(4, 0, 10);
  a.sc();
  load(a);
  run();
  EXPECT_EQ(gpr(4), 0xFFFF8000u);
}

TEST_F(RiscfCpuTest, UnalignedWithinCacheLineIsHandled) {
  Asm a(kCode);
  a.li32(10, kData + 2);
  a.lwz(3, 0, 10);  // unaligned but within a 32B line: hardware-handled
  a.sc();
  load(a);
  EXPECT_EQ(trap_cause(run()), Cause::kSyscall);
}

TEST_F(RiscfCpuTest, UnalignedAcrossCacheLineRaisesAlignment) {
  Asm a(kCode);
  a.li32(10, kData + 30);  // word access spans the 32-byte boundary
  a.lwz(3, 0, 10);
  load(a);
  EXPECT_EQ(trap_cause(run()), Cause::kAlignment);
}

TEST_F(RiscfCpuTest, UnmappedAccessIsDataStorage) {
  Asm a(kCode);
  a.li32(10, 0x40);  // near-NULL
  a.lwz(3, 0, 10);
  load(a);
  const auto r = run();
  EXPECT_EQ(trap_cause(r), Cause::kDataStorage);
  EXPECT_EQ(r.trap.addr, 0x40u);
  EXPECT_EQ(cpu_.regs().dar, 0x40u);  // DAR latches the fault address
}

TEST_F(RiscfCpuTest, StoreToProtectedPageIsProtectionFault) {
  Asm a(kCode);
  a.li32(10, kCode);
  a.stw(3, 0, 10);
  load(a);
  EXPECT_EQ(trap_cause(run()), Cause::kProtection);  // "bus error" category
}

TEST_F(RiscfCpuTest, BusRegionAccessIsMachineCheck) {
  Asm a(kCode);
  a.li32(10, 0x38000);
  a.lwz(3, 0, 10);
  load(a);
  EXPECT_EQ(trap_cause(run()), Cause::kMachineCheck);
}

TEST_F(RiscfCpuTest, MsrIrClearMachineChecksOnFetch) {
  // The paper's observed MSR sensitivity: IR/DR cleared -> immediate
  // machine check.
  Asm a(kCode);
  a.nop();
  load(a);
  cpu_.regs().msr &= ~static_cast<u32>(kMsrIR);
  EXPECT_EQ(trap_cause(cpu_.step()), Cause::kMachineCheck);
}

TEST_F(RiscfCpuTest, MsrDrClearMachineChecksOnDataAccess) {
  Asm a(kCode);
  a.li32(10, kData);
  a.lwz(3, 0, 10);
  load(a);
  cpu_.regs().msr &= ~static_cast<u32>(kMsrDR);
  EXPECT_EQ(trap_cause(run()), Cause::kMachineCheck);
}

TEST_F(RiscfCpuTest, CheckstopWhenMachineCheckDisabled) {
  Asm a(kCode);
  a.li32(10, 0x38000);
  a.lwz(3, 0, 10);
  load(a);
  cpu_.regs().msr &= ~static_cast<u32>(kMsrME);
  const auto r = run();
  EXPECT_EQ(trap_cause(r), Cause::kMachineCheck);
  EXPECT_EQ(r.trap.aux, 1u);  // checkstop marker
}

TEST_F(RiscfCpuTest, BticEnableCorruptsNextTakenBranch) {
  // HID0.BTIC flipped on over invalid contents (Section 5.2).
  Asm a(kCode);
  const auto l = a.new_label();
  a.b(l);
  a.bind(l);
  a.sc();
  load(a);
  cpu_.regs().hid0 |= kHid0Btic;
  EXPECT_EQ(trap_cause(run()), Cause::kIllegalInstruction);
}

TEST_F(RiscfCpuTest, ZeroWordRaisesIllegalInstruction) {
  Asm a(kCode);
  a.emit_word(0);  // BUG()
  load(a);
  EXPECT_EQ(trap_cause(cpu_.step()), Cause::kIllegalInstruction);
}

TEST_F(RiscfCpuTest, TrapWordUnconditionalTraps) {
  Asm a(kCode);
  a.trap();
  load(a);
  EXPECT_EQ(trap_cause(cpu_.step()), Cause::kTrapWord);
}

TEST_F(RiscfCpuTest, DivideByZeroDoesNotTrap) {
  // PPC division never excepts — Table 4 has no divide category.
  Asm a(kCode);
  a.li(3, 100);
  a.li(4, 0);
  a.divw(5, 3, 4);
  a.divwu(6, 3, 4);
  a.sc();
  load(a);
  EXPECT_EQ(trap_cause(run()), Cause::kSyscall);
}

TEST_F(RiscfCpuTest, SprRoundTripAndSprg2) {
  Asm a(kCode);
  a.li32(3, 0xC0003000u);
  a.mtspr(kSprSprg2, 3);
  a.mfspr(4, kSprSprg2);
  a.sc();
  load(a);
  run();
  EXPECT_EQ(gpr(4), 0xC0003000u);
}

TEST_F(RiscfCpuTest, PrivilegedOpInProblemStateFaults) {
  Asm a(kCode);
  a.mfmsr(3);
  load(a);
  cpu_.regs().msr |= kMsrPR;
  EXPECT_EQ(trap_cause(cpu_.step()), Cause::kPrivileged);
}

TEST_F(RiscfCpuTest, MisalignedPcIsInstrStorage) {
  Asm a(kCode);
  a.nop();
  load(a);
  cpu_.set_pc(kCode + 2);
  EXPECT_EQ(trap_cause(cpu_.step()), Cause::kInstrStorage);
}

TEST_F(RiscfCpuTest, RlwinmMasks) {
  Asm a(kCode);
  a.li32(3, 0xF0F0F0F0u);
  a.rlwinm(4, 3, 4, 0, 31);   // pure rotate
  a.rlwinm(5, 3, 0, 24, 31);  // low byte mask
  a.sc();
  load(a);
  run();
  EXPECT_EQ(gpr(4), 0x0F0F0F0Fu);
  EXPECT_EQ(gpr(5), 0xF0u);
}

TEST_F(RiscfCpuTest, RecordFormsUpdateCr0) {
  Asm a(kCode);
  const auto neg = a.new_label();
  a.li(3, 5);
  a.li(4, 9);
  a.subf(5, 4, 3, /*rc=*/true);  // 5 - 9 = -4, LT set
  a.blt(neg);
  a.li(6, 1);
  a.bind(neg);
  a.sc();
  load(a);
  run();
  EXPECT_EQ(gpr(6), 0u);  // branch taken
}

TEST_F(RiscfCpuTest, CtrLoopWithBdnz) {
  Asm a(kCode);
  const auto loop = a.new_label();
  a.li(3, 5);
  a.mtctr(3);
  a.li(4, 0);
  a.bind(loop);
  a.addi(4, 4, 1);
  a.bdnz(loop);
  a.sc();
  load(a);
  run();
  EXPECT_EQ(gpr(4), 5u);
}

TEST_F(RiscfCpuTest, LmwStmwMoveRegisterBlocks) {
  Asm a(kCode);
  a.li32(10, kData);
  a.li(29, 111);
  a.li(30, 222);
  a.li(31, 333);
  a.emit_word((47u << 26) | (29u << 21) | (10u << 16) | 0);  // stmw r29,0(r10)
  a.li(29, 0);
  a.li(30, 0);
  a.li(31, 0);
  a.emit_word((46u << 26) | (29u << 21) | (10u << 16) | 0);  // lmw r29,0(r10)
  a.sc();
  load(a);
  run();
  EXPECT_EQ(gpr(29), 111u);
  EXPECT_EQ(gpr(30), 222u);
  EXPECT_EQ(gpr(31), 333u);
}

TEST_F(RiscfCpuTest, DcbzZeroesCacheBlock) {
  Asm a(kCode);
  a.li32(3, 0xAAAAAAAAu);
  a.li32(10, kData + 64);
  a.stw(3, 0, 10);
  a.stw(3, 28, 10);
  a.emit_word((31u << 26) | (0u << 21) | (0u << 16) | (10u << 11) |
              (1014u << 1));  // dcbz 0,r10
  a.sc();
  load(a);
  run();
  EXPECT_EQ(space_.vread32(kData + 64), 0u);
  EXPECT_EQ(space_.vread32(kData + 64 + 28), 0u);
}

TEST_F(RiscfCpuTest, SnapshotRestoreCoversSprBank) {
  const isa::CpuSnapshot snap = cpu_.snapshot();
  cpu_.regs().gpr[7] = 777;
  cpu_.regs().sprg[2] = 0xBAD;
  cpu_.write_spr(952, 0x1234);  // MMCR0, inert storage
  cpu_.restore(snap);
  EXPECT_EQ(gpr(7), 0u);
  EXPECT_EQ(cpu_.regs().sprg[2], 0xC0003000u);
  u32 v = 1;
  EXPECT_TRUE(cpu_.read_spr(952, v));
  EXPECT_EQ(v, 0u);
}

TEST_F(RiscfCpuTest, SysRegBankHas99Registers) {
  // Paper Section 5.2: "out of 99 system registers in the G4".
  EXPECT_EQ(cpu_.sysregs().count(), 99u);
  EXPECT_NO_THROW(cpu_.sysregs().index_of("MSR"));
  EXPECT_NO_THROW(cpu_.sysregs().index_of("SPRG2"));
  EXPECT_NO_THROW(cpu_.sysregs().index_of("HID0"));
  EXPECT_NO_THROW(cpu_.sysregs().index_of("GPR1/SP"));
}

TEST_F(RiscfCpuTest, InertSprFlipIsHarmlessToExecution) {
  // Most supervisor registers carry no modeled semantics: flips are kept
  // (read back) but execution is unaffected — the reason only 15 of 99
  // registers contributed crashes in the paper.
  isa::SystemRegisterBank& bank = cpu_.sysregs();
  const u32 idx = bank.index_of("THRM1");
  bank.flip_bit(idx, 13);
  EXPECT_EQ(bank.read(idx), 1u << 13);
  Asm a(kCode);
  a.li(3, 1);
  a.sc();
  load(a);
  EXPECT_EQ(trap_cause(run()), Cause::kSyscall);
}

}  // namespace
}  // namespace kfi::riscf
