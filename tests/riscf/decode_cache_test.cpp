// Invalidation contract of the riscf predecoded-instruction cache: a
// cached (already-executed) instruction word corrupted by the injector's
// bit flip or overwritten by a store the program itself executes must be
// re-decoded on the next fetch.  Results are compared against a
// cold-cache (cache disabled) CPU running the identical program.
#include <gtest/gtest.h>

#include "mem/address_space.hpp"
#include "riscf/cpu.hpp"
#include "riscf/encode.hpp"

namespace kfi::riscf {
namespace {

constexpr Addr kCode = 0x10000;

struct Rig {
  mem::AddressSpace space{256 * 1024, mem::Endian::kBig};
  RiscfCpu cpu{space};

  explicit Rig(bool cache) {
    space.map_region("code", kCode, 4096,
                     {.read = true, .write = true, .execute = true});
    cpu.set_decode_cache_enabled(cache);
  }

  void load(const std::vector<u8>& bytes) {
    space.vwrite_bytes(kCode, bytes.data(), static_cast<u32>(bytes.size()));
    cpu.set_pc(kCode);
  }

  isa::StepResult run(u32 max_steps = 100) {
    for (u32 i = 0; i < max_steps; ++i) {
      const isa::StepResult r = cpu.step();
      if (r.status != isa::StepStatus::kOk) return r;
    }
    ADD_FAILURE() << "did not stop";
    return {};
  }
};

std::vector<u8> immediate_load_program() {
  Asm a(kCode);
  a.li(3, 1);  // addi r3, 0, 1: the simm field's low byte is kCode + 3
  a.sc();
  return a.finish();
}

TEST(RiscfDecodeCacheTest, InjectorFlipInCachedCodeIsReDecoded) {
  Rig warm(true), cold(false);
  for (Rig* rig : {&warm, &cold}) {
    rig->load(immediate_load_program());
    rig->run();
    ASSERT_EQ(rig->cpu.regs().gpr[3], 1u);
    // The injector's path: flip bit 1 of the big-endian simm byte (1 -> 3).
    rig->space.vflip_bit(kCode + 3, 1);
    rig->cpu.set_pc(kCode);
    rig->run();
  }
  EXPECT_EQ(warm.cpu.regs().gpr[3], 3u);
  EXPECT_EQ(warm.cpu.regs().gpr[3], cold.cpu.regs().gpr[3]);
  EXPECT_GE(warm.cpu.decode_cache_stats().invalidations, 1u);
  EXPECT_EQ(cold.cpu.decode_cache_stats().hits, 0u);
}

TEST(RiscfDecodeCacheTest, SelfModifyingStoreIsReDecoded) {
  // Pass 1 executes `li r3, 1` (caching it), stores the encoding of
  // `li r3, 7` over it, and branches back; pass 2 must execute the
  // patched word.
  Asm a(kCode);
  const auto start = a.new_label();
  const auto done = a.new_label();
  a.bind(start);
  a.li(3, 1);  // patched between passes
  a.cmpwi(4, 0);
  a.bne(done);
  a.li(4, 1);
  a.li32(5, 0x38600007u);  // addi r3, 0, 7
  a.li32(6, kCode);
  a.stw(5, 0, 6);
  a.b(start);
  a.bind(done);
  a.sc();
  const std::vector<u8> program = a.finish();

  Rig warm(true), cold(false);
  for (Rig* rig : {&warm, &cold}) {
    rig->load(program);
    rig->run();
  }
  EXPECT_EQ(warm.cpu.regs().gpr[3], 7u);
  EXPECT_EQ(warm.cpu.regs().gpr[3], cold.cpu.regs().gpr[3]);
  EXPECT_GE(warm.cpu.decode_cache_stats().invalidations, 1u);
}

TEST(RiscfDecodeCacheTest, UnmodifiedCodeHitsOnReExecution) {
  Rig warm(true);
  warm.load(immediate_load_program());
  warm.run();
  const auto first = warm.cpu.decode_cache_stats();
  warm.cpu.set_pc(kCode);
  warm.run();
  const auto second = warm.cpu.decode_cache_stats();
  EXPECT_EQ(second.misses, first.misses);
  EXPECT_GT(second.hits, first.hits);
  EXPECT_EQ(second.invalidations, 0u);
}

TEST(RiscfDecodeCacheTest, CorruptedWordStillTrapsWithTheRightAux) {
  // A flip that lands on a reserved encoding must raise Illegal
  // Instruction carrying the corrupted word, cached or not (the paper's
  // dominant G4 text-error outcome).
  Rig warm(true), cold(false);
  isa::Trap traps[2];
  int i = 0;
  for (Rig* rig : {&warm, &cold}) {
    Asm a(kCode);
    a.li(3, 1);
    a.sc();
    rig->load(a.finish());
    rig->run();
    // Corrupt the cached li's primary opcode field to a reserved one.
    rig->space.vwrite32(kCode, 0x00000001u);
    rig->cpu.set_pc(kCode);
    const isa::StepResult r = rig->run();
    ASSERT_EQ(r.status, isa::StepStatus::kTrap);
    traps[i++] = r.trap;
  }
  EXPECT_EQ(traps[0].cause, traps[1].cause);
  EXPECT_EQ(traps[0].aux, 0x00000001u);
  EXPECT_EQ(traps[0].aux, traps[1].aux);
}

}  // namespace
}  // namespace kfi::riscf
