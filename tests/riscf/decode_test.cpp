// Decoder/encoder tests for the riscf (G4-like) ISA, including the paper's
// Figure 15 worked example (a single bit flip turning mflr into lhax) and
// the sparse-opcode-map property behind the G4's Illegal Instruction rate.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "riscf/encode.hpp"
#include "riscf/insn.hpp"

namespace kfi::riscf {
namespace {

u32 first_word(const std::vector<u8>& bytes) {
  return (static_cast<u32>(bytes[0]) << 24) | (static_cast<u32>(bytes[1]) << 16) |
         (static_cast<u32>(bytes[2]) << 8) | bytes[3];
}

u32 encode_one(const std::function<void(Asm&)>& emit) {
  Asm a(0x1000);
  emit(a);
  return first_word(a.finish());
}

TEST(RiscfDecodeTest, PaperFigure15MflrEncoding) {
  // The paper's sys_read() prologue: stwu r1,-32(r1); mflr r0 with the
  // published machine code 9421ffe0 / 7c0802a6.
  Asm a(0xC0048FAC);
  a.stwu(1, -32, 1);
  a.mflr(0);
  const std::vector<u8> bytes = a.finish();
  EXPECT_EQ(first_word(bytes), 0x9421FFE0u);
  const u32 mflr = (static_cast<u32>(bytes[4]) << 24) |
                   (static_cast<u32>(bytes[5]) << 16) |
                   (static_cast<u32>(bytes[6]) << 8) | bytes[7];
  EXPECT_EQ(mflr, 0x7C0802A6u);
}

TEST(RiscfDecodeTest, PaperFigure15BitFlipTurnsMflrIntoLhax) {
  // 0x7C0802A6 (mflr r0) ^ bit 3 = 0x7C0802AE (lhax r0,r8,r0): exactly
  // the paper's Figure 15 corruption.
  const Insn original = decode(0x7C0802A6u);
  EXPECT_EQ(original.op, Op::kMfspr);
  EXPECT_EQ(original.spr, 8u);  // LR
  const Insn corrupted = decode(0x7C0802A6u ^ (1u << 3));
  EXPECT_EQ(corrupted.op, Op::kLhax);
  EXPECT_EQ(corrupted.rt, 0);
  EXPECT_EQ(corrupted.ra, 8);
  EXPECT_EQ(corrupted.rb, 0);
}

TEST(RiscfDecodeTest, ZeroWordIsIllegal) {
  // BUG() in Linux/PPC 2.4 was an all-zero word; it must decode invalid.
  EXPECT_EQ(decode(0).op, Op::kInvalid);
}

TEST(RiscfDecodeTest, ScRequiresArchitectedBit) {
  EXPECT_EQ(decode(0x44000002u).op, Op::kSc);
  EXPECT_EQ(decode(0x44000000u).op, Op::kInvalid);
}

TEST(RiscfDecodeTest, BranchEncodings) {
  const u32 b_word = encode_one([](Asm& a) {
    const auto l = a.new_label();
    a.bind(l);
    a.b(l);
  });
  const Insn b_insn = decode(b_word);
  EXPECT_EQ(b_insn.op, Op::kB);
  EXPECT_EQ(b_insn.li, 0);
  EXPECT_FALSE(b_insn.lk);

  const Insn blr_insn = decode(encode_one([](Asm& a) { a.blr(); }));
  EXPECT_EQ(blr_insn.op, Op::kBclr);
  EXPECT_EQ(blr_insn.bo, 20);

  const u32 bne_word = encode_one([](Asm& a) {
    const auto l = a.new_label();
    a.bind(l);
    a.bne(l);
  });
  const Insn bne_insn = decode(bne_word);
  EXPECT_EQ(bne_insn.op, Op::kBc);
  EXPECT_EQ(bne_insn.bo, 4);
  EXPECT_EQ(bne_insn.bi, 2);
}

struct WordCase {
  std::string name;
  std::function<void(Asm&)> emit;
  Op expected;
};

class RiscfRoundTripTest : public ::testing::TestWithParam<WordCase> {};

TEST_P(RiscfRoundTripTest, EncodeDecodeRoundTrips) {
  EXPECT_EQ(decode(encode_one(GetParam().emit)).op, GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Encodings, RiscfRoundTripTest,
    ::testing::Values(
        WordCase{"addi", [](Asm& a) { a.addi(3, 4, -100); }, Op::kAddi},
        WordCase{"addis", [](Asm& a) { a.addis(3, 0, 0x7FFF); }, Op::kAddis},
        WordCase{"mulli", [](Asm& a) { a.mulli(5, 6, 24); }, Op::kMulli},
        WordCase{"cmpwi", [](Asm& a) { a.cmpwi(7, -1); }, Op::kCmpwi},
        WordCase{"cmplwi", [](Asm& a) { a.cmplwi(7, 10); }, Op::kCmplwi},
        WordCase{"ori", [](Asm& a) { a.ori(3, 3, 0xFFFF); }, Op::kOri},
        WordCase{"andi", [](Asm& a) { a.andi_rec(4, 5, 7); }, Op::kAndiRec},
        WordCase{"rlwinm", [](Asm& a) { a.rlwinm(3, 4, 2, 0, 29); },
                 Op::kRlwinm},
        WordCase{"lwz", [](Asm& a) { a.lwz(3, 8, 1); }, Op::kLwz},
        WordCase{"stwu", [](Asm& a) { a.stwu(1, -32, 1); }, Op::kStwu},
        WordCase{"lbz", [](Asm& a) { a.lbz(9, 3, 13); }, Op::kLbz},
        WordCase{"sth", [](Asm& a) { a.sth(9, 2, 13); }, Op::kSth},
        WordCase{"lha", [](Asm& a) { a.lha(9, 6, 13); }, Op::kLha},
        WordCase{"add", [](Asm& a) { a.add(3, 4, 5); }, Op::kAdd},
        WordCase{"subf", [](Asm& a) { a.subf(3, 4, 5); }, Op::kSubf},
        WordCase{"divw", [](Asm& a) { a.divw(3, 4, 5); }, Op::kDivw},
        WordCase{"divwu", [](Asm& a) { a.divwu(3, 4, 5); }, Op::kDivwu},
        WordCase{"and", [](Asm& a) { a.and_(3, 4, 5); }, Op::kAnd},
        WordCase{"or", [](Asm& a) { a.or_(3, 4, 5); }, Op::kOr},
        WordCase{"xor", [](Asm& a) { a.xor_(3, 4, 5); }, Op::kXor},
        WordCase{"slw", [](Asm& a) { a.slw(3, 4, 5); }, Op::kSlw},
        WordCase{"srawi", [](Asm& a) { a.srawi(3, 4, 6); }, Op::kSrawi},
        WordCase{"cmpw", [](Asm& a) { a.cmpw(3, 4); }, Op::kCmp},
        WordCase{"mfmsr", [](Asm& a) { a.mfmsr(3); }, Op::kMfmsr},
        WordCase{"mtmsr", [](Asm& a) { a.mtmsr(3); }, Op::kMtmsr},
        WordCase{"mfspr", [](Asm& a) { a.mfspr(3, kSprSprg2); }, Op::kMfspr},
        WordCase{"mtspr", [](Asm& a) { a.mtspr(kSprHid0, 3); }, Op::kMtspr},
        WordCase{"lwzx", [](Asm& a) { a.lwzx(3, 4, 5); }, Op::kLwzx},
        WordCase{"stbx", [](Asm& a) { a.stbx(3, 4, 5); }, Op::kStbx},
        WordCase{"tw", [](Asm& a) { a.trap(); }, Op::kTw},
        WordCase{"sc", [](Asm& a) { a.sc(); }, Op::kSc},
        WordCase{"sync", [](Asm& a) { a.sync(); }, Op::kSync},
        WordCase{"isync", [](Asm& a) { a.isync(); }, Op::kIsync},
        WordCase{"bctr", [](Asm& a) { a.bctr(); }, Op::kBcctr}),
    [](const auto& info) { return info.param.name; });

TEST(RiscfDecodeTest, SprFieldSplitEncoding) {
  // SPR numbers are split across two 5-bit fields; verify a large number.
  const Insn insn = decode(encode_one([](Asm& a) { a.mfspr(3, 1008); }));
  EXPECT_EQ(insn.op, Op::kMfspr);
  EXPECT_EQ(insn.spr, 1008u);
}

TEST(RiscfDecodeTest, RandomWordValidityMatchesRealPpcDensity) {
  // Roughly 70-80% of the primary opcode space is architected on a real
  // G4 (incl. FP and AltiVec); reserved encodings are illegal.  The map
  // must be sparse enough that bit flips often produce illegal encodings
  // (Figure 11: 41.5% of G4 code-error crashes) but not artificially so.
  Rng rng(5);
  u32 valid = 0;
  const u32 kTrials = 4000;
  for (u32 t = 0; t < kTrials; ++t) {
    if (decode(rng.next_u32()).op != Op::kInvalid) ++valid;
  }
  const double rate = static_cast<double>(valid) / kTrials;
  EXPECT_GT(rate, 0.45);
  EXPECT_LT(rate, 0.85);
}

TEST(RiscfDecodeTest, SingleBitFlipStaysOneInstruction) {
  // Fixed-width ISA: a flip can change WHAT an instruction is but never
  // how many bytes it occupies — the anti-Figure-14 property.
  Asm a(0x1000);
  a.addi(3, 3, 1);
  a.stw(3, 8, 1);
  const std::vector<u8> bytes = a.finish();
  EXPECT_EQ(bytes.size(), 8u);  // always exactly 4 bytes per instruction
  for (u32 bit = 0; bit < 32; ++bit) {
    const Insn flipped = decode(first_word(bytes) ^ (1u << bit));
    // Whatever it became, the next instruction is untouched.
    (void)flipped;
  }
  const u32 second = (static_cast<u32>(bytes[4]) << 24) |
                     (static_cast<u32>(bytes[5]) << 16) |
                     (static_cast<u32>(bytes[6]) << 8) | bytes[7];
  EXPECT_EQ(decode(second).op, Op::kStw);
}

TEST(RiscfDecodeTest, DisassemblyShowsPaperMnemonics) {
  EXPECT_NE(decode(0x7C0802A6u).to_string().find("mflr"), std::string::npos);
  EXPECT_NE(decode(0x7C0802AEu).to_string().find("lhax"), std::string::npos);
  const Insn lwz = decode(encode_one([](Asm& a) { a.lwz(11, 40, 31); }));
  EXPECT_NE(lwz.to_string().find("r11,40(r31)"), std::string::npos);
}

TEST(RiscfDecodeTest, Li32ComposesConstants) {
  for (const u32 v : {0u, 1u, 0x7FFFu, 0x8000u, 0xDEAD4EADu, 0xC0200000u}) {
    Asm a(0x1000);
    a.li32(3, v);
    const std::vector<u8> bytes = a.finish();
    // One or two instructions; decodes to addi or addis(+ori).
    EXPECT_LE(bytes.size(), 8u);
  }
}

}  // namespace
}  // namespace kfi::riscf
