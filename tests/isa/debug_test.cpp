#include "isa/debug.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace kfi::isa {
namespace {

TEST(DebugUnitTest, InsnBreakpointFiresOnceAtAddress) {
  DebugUnit dbg;
  dbg.arm_insn_bp(0x1000);
  EXPECT_FALSE(dbg.check_insn_bp(0x0FFC));
  EXPECT_TRUE(dbg.check_insn_bp(0x1000));
  // One-shot: a second visit does not fire (the injector re-arms if
  // needed).
  EXPECT_FALSE(dbg.check_insn_bp(0x1000));
  EXPECT_FALSE(dbg.insn_bp_armed());
}

TEST(DebugUnitTest, DisarmInsnBreakpoint) {
  DebugUnit dbg;
  dbg.arm_insn_bp(0x2000);
  dbg.disarm_insn_bp();
  EXPECT_FALSE(dbg.check_insn_bp(0x2000));
}

TEST(DebugUnitTest, DataBreakpointReportsOverlappingAccess) {
  DebugUnit dbg;
  dbg.arm_data_bp(0, 0x100, 4, /*on_read=*/true, /*on_write=*/true);
  StepResult result;
  dbg.record_access(0x102, 1, /*is_write=*/false, result);
  ASSERT_EQ(result.num_data_hits, 1);
  EXPECT_EQ(result.data_hits[0].addr, 0x102u);
  EXPECT_FALSE(result.data_hits[0].is_write);
}

TEST(DebugUnitTest, DataBreakpointIgnoresNonOverlapping) {
  DebugUnit dbg;
  dbg.arm_data_bp(0, 0x100, 4, true, true);
  StepResult result;
  dbg.record_access(0x104, 4, false, result);  // adjacent, no overlap
  dbg.record_access(0x0FC, 4, true, result);   // adjacent below
  EXPECT_EQ(result.num_data_hits, 0);
}

TEST(DebugUnitTest, PartialOverlapCounts) {
  DebugUnit dbg;
  dbg.arm_data_bp(0, 0x100, 4, true, true);
  StepResult result;
  dbg.record_access(0x0FE, 4, false, result);  // covers 0xFE..0x101
  EXPECT_EQ(result.num_data_hits, 1);
}

TEST(DebugUnitTest, ReadWriteFiltersRespected) {
  DebugUnit dbg;
  dbg.arm_data_bp(0, 0x100, 4, /*on_read=*/false, /*on_write=*/true);
  StepResult result;
  dbg.record_access(0x100, 4, /*is_write=*/false, result);
  EXPECT_EQ(result.num_data_hits, 0);
  dbg.record_access(0x100, 4, /*is_write=*/true, result);
  EXPECT_EQ(result.num_data_hits, 1);
  EXPECT_TRUE(result.data_hits[0].is_write);
}

TEST(DebugUnitTest, TwoBreakpointsReportIndependently) {
  DebugUnit dbg;
  dbg.arm_data_bp(0, 0x100, 4, true, true);
  dbg.arm_data_bp(1, 0x200, 4, true, true);
  StepResult result;
  dbg.record_access(0x200, 4, false, result);
  ASSERT_EQ(result.num_data_hits, 1);
  EXPECT_EQ(result.data_hits[0].bp_index, 1);
}

TEST(DebugUnitTest, ClearAllDisarmsEverything) {
  DebugUnit dbg;
  dbg.arm_insn_bp(0x1000);
  dbg.arm_data_bp(0, 0x100, 4, true, true);
  dbg.clear_all();
  EXPECT_FALSE(dbg.insn_bp_armed());
  EXPECT_FALSE(dbg.data_bp_armed(0));
  StepResult result;
  dbg.record_access(0x100, 4, true, result);
  EXPECT_EQ(result.num_data_hits, 0);
}

TEST(DebugUnitTest, HitCapIsBounded) {
  // At most two hits are recorded per step; extra hits are dropped rather
  // than overflowing.
  DebugUnit dbg;
  dbg.arm_data_bp(0, 0x100, 8, true, true);
  dbg.arm_data_bp(1, 0x100, 8, true, true);
  StepResult result;
  dbg.record_access(0x100, 4, false, result);
  dbg.record_access(0x104, 4, false, result);
  EXPECT_EQ(result.num_data_hits, 2);
}

TEST(DebugUnitTest, BadIndexThrows) {
  DebugUnit dbg;
  EXPECT_THROW(dbg.arm_data_bp(2, 0x100, 4, true, true), InternalError);
  EXPECT_THROW(dbg.disarm_data_bp(5), InternalError);
}

}  // namespace
}  // namespace kfi::isa
