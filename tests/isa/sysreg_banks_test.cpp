// Properties of both system-register banks: unique names, read/write
// round-trips, flip involution, and the paper's bank compositions.
#include <gtest/gtest.h>

#include <set>

#include "cisca/cpu.hpp"
#include "isa/arch.hpp"
#include "common/error.hpp"
#include "mem/address_space.hpp"
#include "riscf/cpu.hpp"

namespace kfi::isa {
namespace {

struct BankFixture {
  mem::AddressSpace space;
  std::unique_ptr<CpuCore> cpu;

  explicit BankFixture(Arch arch)
      : space(64 * 1024, arch == Arch::kCisca ? mem::Endian::kLittle
                                              : mem::Endian::kBig) {
    if (arch == Arch::kCisca) {
      cpu = std::make_unique<cisca::CiscaCpu>(space);
    } else {
      cpu = std::make_unique<riscf::RiscfCpu>(space);
    }
  }
};

class SysRegBankTest : public ::testing::TestWithParam<Arch> {};

TEST_P(SysRegBankTest, NamesAreUniqueAndNonEmpty) {
  BankFixture fx(GetParam());
  SystemRegisterBank& bank = fx.cpu->sysregs();
  std::set<std::string> names;
  for (u32 i = 0; i < bank.count(); ++i) {
    const auto& info = bank.info(i);
    EXPECT_FALSE(info.name.empty());
    EXPECT_TRUE(names.insert(info.name).second) << "duplicate " << info.name;
    EXPECT_GE(info.bits, 16u);
    EXPECT_LE(info.bits, 32u);
  }
}

TEST_P(SysRegBankTest, FlipIsInvolutionOnEveryRegisterAndBit) {
  BankFixture fx(GetParam());
  SystemRegisterBank& bank = fx.cpu->sysregs();
  for (u32 i = 0; i < bank.count(); ++i) {
    const u32 before = bank.read(i);
    for (u32 bit = 0; bit < bank.info(i).bits; bit += 5) {
      bank.flip_bit(i, bit);
      bank.flip_bit(i, bit);
    }
    // PVR-style read-only registers simply ignore writes; everything else
    // must round-trip exactly.
    EXPECT_EQ(bank.read(i), before) << bank.info(i).name;
  }
}

TEST_P(SysRegBankTest, SnapshotRestoreCoversTheWholeBank) {
  BankFixture fx(GetParam());
  SystemRegisterBank& bank = fx.cpu->sysregs();
  const CpuSnapshot snap = fx.cpu->snapshot();
  std::vector<u32> before(bank.count());
  for (u32 i = 0; i < bank.count(); ++i) before[i] = bank.read(i);
  for (u32 i = 0; i < bank.count(); ++i) bank.flip_bit(i, 3);
  fx.cpu->restore(snap);
  for (u32 i = 0; i < bank.count(); ++i) {
    EXPECT_EQ(bank.read(i), before[i]) << bank.info(i).name;
  }
}

TEST_P(SysRegBankTest, IndexOfThrowsForUnknownName) {
  BankFixture fx(GetParam());
  EXPECT_THROW(fx.cpu->sysregs().index_of("NOPE"), InternalError);
}

INSTANTIATE_TEST_SUITE_P(BothArchs, SysRegBankTest,
                         ::testing::Values(Arch::kCisca, Arch::kRiscf),
                         [](const auto& info) {
                           return info.param == Arch::kCisca ? "cisca"
                                                             : "riscf";
                         });

TEST(SysRegBankTest, PaperBankCompositions) {
  BankFixture p4(Arch::kCisca);
  BankFixture g4(Arch::kRiscf);
  // "out of 99 system registers in the G4 and approximately 20 in the P4"
  EXPECT_EQ(g4.cpu->sysregs().count(), 99u);
  EXPECT_NEAR(static_cast<double>(p4.cpu->sysregs().count()), 20.0, 3.0);
}

}  // namespace
}  // namespace kfi::isa
