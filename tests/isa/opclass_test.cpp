// Shared opclass taxonomy: stable names and the --opclass spellings the
// CLI accepts.
#include <gtest/gtest.h>

#include "isa/opclass.hpp"

namespace kfi::isa {
namespace {

TEST(OpClassTest, NamesAreStable) {
  EXPECT_EQ(opclass_name(OpClass::kAlu), "alu");
  EXPECT_EQ(opclass_name(OpClass::kLoadStore), "loadstore");
  EXPECT_EQ(opclass_name(OpClass::kBranch), "branch");
  EXPECT_EQ(opclass_name(OpClass::kSystem), "system");
  EXPECT_EQ(opclass_name(OpClass::kOther), "other");
}

TEST(OpClassTest, ParseRoundTripsEveryName) {
  for (u32 c = 0; c < static_cast<u32>(OpClass::kNumClasses); ++c) {
    const auto cls = static_cast<OpClass>(c);
    const auto parsed = parse_opclass(opclass_name(cls));
    ASSERT_TRUE(parsed.has_value()) << opclass_name(cls);
    EXPECT_EQ(*parsed, cls);
  }
}

TEST(OpClassTest, ParseAcceptsLoadStoreSpellings) {
  EXPECT_EQ(parse_opclass("load-store"), OpClass::kLoadStore);
  EXPECT_EQ(parse_opclass("load_store"), OpClass::kLoadStore);
}

TEST(OpClassTest, ParseRejectsUnknownNames) {
  EXPECT_FALSE(parse_opclass("").has_value());
  EXPECT_FALSE(parse_opclass("bogus").has_value());
  EXPECT_FALSE(parse_opclass("ALU").has_value());  // names are lower-case
}

}  // namespace
}  // namespace kfi::isa
