// Tests for the Machine runtime glue: timer-interrupt delivery with the
// context saved in simulated stack memory, the cisca IDTR/NT trap checks,
// the riscf SPRG2 stack-switch path and exception-entry wrapper, crash
// classification, and the event-driven run loop.
#include <gtest/gtest.h>

#include "cisca/cpu.hpp"
#include "cisca/regs.hpp"
#include "kernel/abi.hpp"
#include "kernel/layout.hpp"
#include "kernel/machine.hpp"
#include "riscf/cpu.hpp"
#include "riscf/regs.hpp"

namespace kfi::kernel {
namespace {

Event run_briefly(Machine& machine, u64 budget = 300'000'000) {
  const u64 stop = machine.cpu().cycles() + budget;
  for (;;) {
    const Event ev = machine.run(stop);
    if (ev.kind != EventKind::kInsnBp && ev.kind != EventKind::kDataBp) {
      return ev;
    }
  }
}

TEST(RuntimeTest, TimerTicksAdvanceJiffies) {
  MachineOptions opts;
  opts.timer_period = 200'000;  // fast ticks for the test
  Machine machine(isa::Arch::kRiscf, opts);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(machine.syscall(Syscall::kYield).kind, EventKind::kSyscallDone);
  }
  EXPECT_GT(machine.read_global("jiffies"), 5u);
  EXPECT_EQ(machine.read_global("jiffies"), machine.read_global("intr_count"));
}

TEST(RuntimeTest, PercpuTickCounterUsesFsOnCisca) {
  MachineOptions opts;
  opts.timer_period = 200'000;
  Machine machine(isa::Arch::kCisca, opts);
  for (int i = 0; i < 100; ++i) machine.syscall(Syscall::kYield);
  // The per-CPU counter at FS:0x10 (percpu base 0xC0003000).
  EXPECT_EQ(machine.space().vread32(0xC0003010u),
            machine.read_global("jiffies"));
}

TEST(RuntimeTest, CorruptedIdtrBaseIsFatalAtNextKernelEntry) {
  Machine machine(isa::Arch::kCisca, MachineOptions{});
  machine.cpu().sysregs().flip_bit(
      machine.cpu().sysregs().index_of("IDTR_BASE"), 18);
  const Event ev = machine.syscall(Syscall::kGetpid);
  ASSERT_EQ(ev.kind, EventKind::kCrash);
  EXPECT_EQ(ev.crash.cause, CrashCause::kGeneralProtection);
}

TEST(RuntimeTest, IdtrLimitGrowthIsHarmless) {
  Machine machine(isa::Arch::kCisca, MachineOptions{});
  machine.cpu().sysregs().flip_bit(
      machine.cpu().sysregs().index_of("IDTR_LIMIT"), 14);  // grows the limit
  EXPECT_EQ(machine.syscall(Syscall::kGetpid).kind, EventKind::kSyscallDone);
}

TEST(RuntimeTest, SPRG2CorruptionCrashesAtUserModeTick) {
  MachineOptions opts;
  opts.timer_period = 150'000;
  Machine machine(isa::Arch::kRiscf, opts);
  machine.cpu().sysregs().flip_bit(machine.cpu().sysregs().index_of("SPRG2"),
                                   19);
  Event last{};
  for (int i = 0; i < 200; ++i) {
    last = machine.syscall(Syscall::kYield);
    if (last.kind != EventKind::kSyscallDone) break;
  }
  ASSERT_EQ(last.kind, EventKind::kCrash);
  // Executing from wherever SPRG2 points: illegal encoding or bad fetch.
  EXPECT_TRUE(last.crash.cause == CrashCause::kIllegalInstruction ||
              last.crash.cause == CrashCause::kBadArea ||
              last.crash.cause == CrashCause::kStackOverflow)
      << crash_cause_name(last.crash.cause);
}

TEST(RuntimeTest, WrapperClassifiesWildSpAsStackOverflow) {
  Machine machine(isa::Arch::kRiscf, MachineOptions{});
  machine.begin_syscall(Syscall::kYield);
  // Let the syscall get going, then trash the stack pointer mid-kernel.
  machine.run(machine.cpu().cycles() + 2000);
  auto* cpu = dynamic_cast<riscf::RiscfCpu*>(&machine.cpu());
  cpu->regs().gpr[riscf::kSp] = 0x12345678;
  const Event ev = run_briefly(machine);
  ASSERT_EQ(ev.kind, EventKind::kCrash);
  EXPECT_EQ(ev.crash.cause, CrashCause::kStackOverflow);
}

TEST(RuntimeTest, WithoutWrapperWildSpIsBadArea) {
  MachineOptions opts;
  opts.g4_stack_wrapper = false;
  Machine machine(isa::Arch::kRiscf, opts);
  machine.begin_syscall(Syscall::kYield);
  machine.run(machine.cpu().cycles() + 2000);
  auto* cpu = dynamic_cast<riscf::RiscfCpu*>(&machine.cpu());
  cpu->regs().gpr[riscf::kSp] = 0x12345678;
  const Event ev = run_briefly(machine);
  ASSERT_EQ(ev.kind, EventKind::kCrash);
  EXPECT_NE(ev.crash.cause, CrashCause::kStackOverflow);
}

TEST(RuntimeTest, WildEspOnCiscaIsNeverStackOverflow) {
  Machine machine(isa::Arch::kCisca, MachineOptions{});
  machine.begin_syscall(Syscall::kYield);
  machine.run(machine.cpu().cycles() + 2000);
  auto* cpu = dynamic_cast<cisca::CiscaCpu*>(&machine.cpu());
  cpu->regs().gpr[cisca::kEsp] = 0x12345678;
  const Event ev = run_briefly(machine);
  ASSERT_EQ(ev.kind, EventKind::kCrash);
  EXPECT_TRUE(ev.crash.cause == CrashCause::kBadPaging ||
              ev.crash.cause == CrashCause::kNullPointer ||
              ev.crash.cause == CrashCause::kGeneralProtection)
      << crash_cause_name(ev.crash.cause);
}

TEST(RuntimeTest, CheckstopWhenMachineCheckArrivesWithMeCleared) {
  Machine machine(isa::Arch::kRiscf, MachineOptions{});
  auto* cpu = dynamic_cast<riscf::RiscfCpu*>(&machine.cpu());
  machine.begin_syscall(Syscall::kYield);
  machine.run(machine.cpu().cycles() + 2000);
  cpu->regs().msr &= ~static_cast<u32>(riscf::kMsrME);
  cpu->regs().msr &= ~static_cast<u32>(riscf::kMsrDR);  // force the check
  const Event ev = run_briefly(machine);
  EXPECT_EQ(ev.kind, EventKind::kCheckstop);
}

TEST(RuntimeTest, CrashLatencyIncludesFigure3Stages) {
  // A deliberate immediate NULL dereference: even an "instant" crash pays
  // the hardware (>1000 cycles) + handler stages before being reported.
  Machine machine(isa::Arch::kCisca, MachineOptions{});
  machine.begin_syscall(Syscall::kYield);
  machine.run(machine.cpu().cycles() + 2000);
  auto* cpu = dynamic_cast<cisca::CiscaCpu*>(&machine.cpu());
  const u64 before = cpu->cycles();
  cpu->regs().eip = 0x10;  // fetch from the NULL page
  const Event ev = run_briefly(machine);
  ASSERT_EQ(ev.kind, EventKind::kCrash);
  EXPECT_EQ(ev.crash.cause, CrashCause::kNullPointer);
  EXPECT_GT(ev.crash.cycles_to_crash - before, 1000u);
}

TEST(RuntimeTest, CycleStopReturnsAtRequestedPoint) {
  Machine machine(isa::Arch::kCisca, MachineOptions{});
  machine.begin_syscall(Syscall::kRead, 0, kUserBufBase, 64);
  const u64 stop = machine.cpu().cycles() + 500;
  const Event ev = machine.run(stop);
  EXPECT_EQ(ev.kind, EventKind::kCycleStop);
  EXPECT_GE(machine.cpu().cycles(), stop);
  // Resumable: finishing the syscall still works.
  const Event done = run_briefly(machine);
  EXPECT_EQ(done.kind, EventKind::kSyscallDone);
}

TEST(RuntimeTest, RunWhileIdleReturnsIdle) {
  Machine machine(isa::Arch::kRiscf, MachineOptions{});
  EXPECT_EQ(machine.run(0).kind, EventKind::kIdle);
}

TEST(RuntimeTest, TimerContextLivesOnTheSimulatedStack) {
  // Deliver a tick inside a syscall; the interrupted context must be in
  // stack memory below the stack pointer (so stack injections can hit it).
  MachineOptions opts;
  opts.timer_period = 10'000;
  opts.user_cycles_mean = 2'000;
  Machine machine(isa::Arch::kRiscf, opts);
  // Run enough syscalls that at least one in-kernel tick occurred.
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(machine.syscall(Syscall::kWrite, 1, kUserBufBase, 64).kind,
              EventKind::kSyscallDone);
  }
  EXPECT_GT(machine.read_global("intr_count"), 10u);
}

TEST(RuntimeTest, InterruptsDisabledDeferTicks) {
  MachineOptions opts;
  opts.timer_period = 50'000;
  Machine machine(isa::Arch::kRiscf, opts);
  auto* cpu = dynamic_cast<riscf::RiscfCpu*>(&machine.cpu());
  cpu->regs().msr &= ~static_cast<u32>(riscf::kMsrEE);  // mask interrupts
  for (int i = 0; i < 50; ++i) machine.syscall(Syscall::kYield);
  EXPECT_EQ(machine.read_global("jiffies"), 0u);
}

}  // namespace
}  // namespace kfi::kernel
