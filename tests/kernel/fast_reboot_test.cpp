// Dirty-page fast reboot: restoring the boot snapshot after an injection
// run must leave memory byte-identical to the pre-optimization full-copy
// restore, while copying only the pages the run actually dirtied.
#include <gtest/gtest.h>

#include "kernel/abi.hpp"
#include "kernel/layout.hpp"
#include "kernel/machine.hpp"

namespace kfi::kernel {
namespace {

class FastRebootTest : public ::testing::TestWithParam<isa::Arch> {};

/// Dirty a scattered set of pages the way an injection run does: syscalls
/// (data page counters, stack frames, timer state) plus direct flips into
/// text, data, and a far stack.
void dirty_machine(Machine& machine) {
  for (u32 i = 0; i < 3; ++i) machine.syscall(Syscall::kGetpid);
  machine.space().vflip_bit(kTextBase + 0x40, 3);
  machine.space().vflip_bit(kDataBase + 0x1000, 5);
  machine.space().vflip_bit(stack_top(machine.arch(), 2) - 16, 1);
}

TEST_P(FastRebootTest, FastRestoreIsByteIdenticalToFullCopy) {
  const isa::Arch arch = GetParam();
  MachineOptions fast_opts;
  fast_opts.fast_reboot = true;
  MachineOptions full_opts;
  full_opts.fast_reboot = false;
  Machine fast(arch, fast_opts);
  Machine full(arch, full_opts);

  dirty_machine(fast);
  dirty_machine(full);
  fast.restore(fast.boot_snapshot());
  full.restore(full.boot_snapshot());

  const auto& fast_pm = fast.space().phys();
  const auto& full_pm = full.space().phys();
  // The fast path copied a strict subset of pages; the full path all.
  EXPECT_GT(fast_pm.last_restore_pages(), 0u);
  EXPECT_LT(fast_pm.last_restore_pages(), fast_pm.num_pages());
  EXPECT_EQ(full_pm.last_restore_pages(), full_pm.num_pages());

  // Memory is byte-identical between the two restore strategies (both
  // machines are deterministic clones up to the restore path).
  ASSERT_EQ(fast_pm.size(), full_pm.size());
  std::vector<u8> fast_bytes(fast_pm.size()), full_bytes(full_pm.size());
  fast_pm.read_bytes(0, fast_bytes.data(), fast_pm.size());
  full_pm.read_bytes(0, full_bytes.data(), full_pm.size());
  EXPECT_EQ(fast_bytes, full_bytes);
  // And identical to the boot snapshot itself.
  EXPECT_EQ(fast_bytes, *fast.boot_snapshot().memory);
}

TEST_P(FastRebootTest, RepeatedRebootsConverge) {
  // Reboot loops (one per injection) keep working: every restore returns
  // to the bit-exact boot state and the dirty set never grows stale.
  const isa::Arch arch = GetParam();
  Machine machine(arch, MachineOptions{});
  const auto& pm = machine.space().phys();
  u32 first_run_pages = 0;
  for (u32 run = 0; run < 4; ++run) {
    dirty_machine(machine);
    machine.restore(machine.boot_snapshot());
    if (run == 0) first_run_pages = pm.last_restore_pages();
    std::vector<u8> bytes(pm.size());
    pm.read_bytes(0, bytes.data(), pm.size());
    ASSERT_EQ(bytes, *machine.boot_snapshot().memory) << "run " << run;
  }
  EXPECT_GT(first_run_pages, 0u);
  EXPECT_LT(first_run_pages, pm.num_pages());
  // An immediate re-restore with nothing dirtied copies nothing.
  machine.restore(machine.boot_snapshot());
  EXPECT_EQ(pm.last_restore_pages(), 0u);
}

TEST_P(FastRebootTest, BootSnapshotIsSharedNotDuplicated) {
  // The satellite fix for the boot-time double copy: Machine::boot() and
  // its stored boot snapshot share one immutable buffer.
  const isa::Arch arch = GetParam();
  Machine machine(arch, MachineOptions{});
  const MachineSnapshot copy = machine.boot_snapshot();  // struct copy
  EXPECT_EQ(copy.memory.get(), machine.boot_snapshot().memory.get());
  // Holders: the machine's boot snapshot, the memory's restore baseline,
  // and our copy — all the same buffer, never a fresh allocation.
  EXPECT_EQ(copy.memory.use_count(), 3);
}

INSTANTIATE_TEST_SUITE_P(BothArchs, FastRebootTest,
                         ::testing::Values(isa::Arch::kCisca,
                                           isa::Arch::kRiscf),
                         [](const auto& info) {
                           return info.param == isa::Arch::kCisca
                                      ? std::string("cisca")
                                      : std::string("riscf");
                         });

}  // namespace
}  // namespace kfi::kernel
