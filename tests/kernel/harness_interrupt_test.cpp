// HarnessInterrupt: the cooperative channel the campaign supervisor uses
// to break a wedged simulation out of Machine::run.  Contract: a raised
// flag (or an exhausted step budget) throws kfi::StallInterrupt; the
// machine is then mid-run garbage, but restoring the boot snapshot
// brings it back to a fully working state.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "kernel/abi.hpp"
#include "kernel/machine.hpp"

namespace kfi::kernel {
namespace {

class HarnessInterruptTest : public ::testing::TestWithParam<isa::Arch> {
 protected:
  HarnessInterruptTest() : machine_(GetParam(), MachineOptions{}) {}
  Machine machine_;
};

TEST_P(HarnessInterruptTest, RequestedFlagThrowsStallInterrupt) {
  HarnessInterrupt hi;
  hi.requested.store(true);
  machine_.set_harness_interrupt(&hi);
  EXPECT_THROW(machine_.syscall(Syscall::kGetpid), StallInterrupt);
}

TEST_P(HarnessInterruptTest, StepBudgetThrowsStallInterrupt) {
  HarnessInterrupt hi;
  hi.step_budget = 5;  // no syscall completes in 5 simulation steps
  machine_.set_harness_interrupt(&hi);
  EXPECT_THROW(machine_.syscall(Syscall::kGetpid), StallInterrupt);
}

TEST_P(HarnessInterruptTest, GenerousBudgetAndClearFlagDoNotInterfere) {
  HarnessInterrupt hi;
  hi.step_budget = 50'000'000;
  machine_.set_harness_interrupt(&hi);
  const Event ev = machine_.syscall(Syscall::kGetpid);
  EXPECT_EQ(ev.kind, EventKind::kSyscallDone);
  EXPECT_EQ(ev.ret, 1u);
}

TEST_P(HarnessInterruptTest, RestoreAfterInterruptYieldsWorkingMachine) {
  HarnessInterrupt hi;
  hi.requested.store(true);
  machine_.set_harness_interrupt(&hi);
  EXPECT_THROW(machine_.syscall(Syscall::kYield), StallInterrupt);
  // Mid-run state is garbage by contract; the supervisor's recovery path
  // is snapshot restore (the engine rebuilds the whole rig, which boots
  // from the shared image — restoring the boot snapshot is equivalent).
  hi.requested.store(false);
  machine_.restore(machine_.boot_snapshot());
  const Event ev = machine_.syscall(Syscall::kGetpid);
  EXPECT_EQ(ev.kind, EventKind::kSyscallDone);
  EXPECT_EQ(ev.ret, 1u);
}

TEST_P(HarnessInterruptTest, DetachingDisablesTheBudget) {
  HarnessInterrupt hi;
  hi.step_budget = 5;
  machine_.set_harness_interrupt(&hi);
  EXPECT_THROW(machine_.syscall(Syscall::kGetpid), StallInterrupt);
  machine_.set_harness_interrupt(nullptr);
  machine_.restore(machine_.boot_snapshot());
  EXPECT_EQ(machine_.syscall(Syscall::kGetpid).ret, 1u);
}

INSTANTIATE_TEST_SUITE_P(BothArches, HarnessInterruptTest,
                         ::testing::Values(isa::Arch::kCisca,
                                           isa::Arch::kRiscf),
                         [](const auto& info) {
                           return info.param == isa::Arch::kCisca
                                      ? std::string("cisca")
                                      : std::string("riscf");
                         });

}  // namespace
}  // namespace kfi::kernel
