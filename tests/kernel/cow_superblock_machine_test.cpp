// Machine-level contracts of the two PR-8 fast paths.
//
//   * COW boot-snapshot sharing: a worker Machine constructed from a donor
//     machine's boot snapshot starts with ZERO private pages (its memory
//     aliases the donor's snapshot buffer) yet is bit-identical — same
//     boot state, same behavior, same snapshots — to a machine that
//     booted itself.
//
//   * Superblock invalidation end-to-end: depositing a bit flip into a
//     kernel code page whose instructions are already cached (decode cache
//     AND superblock cache, both on by default) must invalidate the stale
//     entries, so the machine behaves bit-identically to one running with
//     every cache disabled.
#include <gtest/gtest.h>

#include "kernel/abi.hpp"
#include "kernel/layout.hpp"
#include "kernel/machine.hpp"
#include "kernel/program.hpp"

namespace kfi::kernel {
namespace {

class CowSuperblockMachineTest : public ::testing::TestWithParam<isa::Arch> {};

TEST_P(CowSuperblockMachineTest, WorkerFromDonorSnapshotMatchesSelfBooted) {
  const isa::Arch arch = GetParam();
  const kir::ImagePtr image = build_shared_kernel_image(arch);
  MachineOptions opts;
  Machine donor(arch, opts, image);
  Machine self(arch, opts, image);
  Machine worker(arch, opts, image, donor.boot_snapshot());

  // The whole point: adopting the donor's snapshot leaves the worker with
  // no private pages until it writes something.
  EXPECT_EQ(worker.space().phys().private_pages(), 0u);

  // Boot state is bit-identical to a self-booted machine.
  EXPECT_EQ(*worker.boot_snapshot().memory, *self.boot_snapshot().memory);
  EXPECT_EQ(worker.boot_snapshot().cpu.words, self.boot_snapshot().cpu.words);
  EXPECT_EQ(worker.boot_snapshot().cpu.cycles,
            self.boot_snapshot().cpu.cycles);
  EXPECT_EQ(worker.boot_snapshot().rng_state, self.boot_snapshot().rng_state);

  // And so is behavior: the same syscall sequence lands in the same state.
  for (Machine* m : {&worker, &self}) {
    m->syscall(Syscall::kGetpid);
    m->syscall(Syscall::kWrite, 1, kUserBufBase, 64);
  }
  // The run dirtied only a handful of pages — that is the whole resident
  // cost of this worker beyond the shared image.  (Sampled before the
  // snapshots below: taking a snapshot re-baselines memory onto the new
  // shared buffer, releasing the private copies.)
  EXPECT_GT(worker.space().phys().private_pages(), 0u);
  EXPECT_LT(worker.space().phys().private_pages(),
            worker.space().phys().num_pages() / 4);
  const MachineSnapshot ws = worker.snapshot();
  const MachineSnapshot ss = self.snapshot();
  EXPECT_EQ(*ws.memory, *ss.memory);
  EXPECT_EQ(ws.cpu.words, ss.cpu.words);
  EXPECT_EQ(ws.cpu.cycles, ss.cpu.cycles);
}

TEST_P(CowSuperblockMachineTest, WorkerRebootDropsBackToSharedPages) {
  const isa::Arch arch = GetParam();
  const kir::ImagePtr image = build_shared_kernel_image(arch);
  MachineOptions opts;
  Machine donor(arch, opts, image);
  Machine worker(arch, opts, image, donor.boot_snapshot());

  worker.syscall(Syscall::kWrite, 1, kUserBufBase, 64);
  worker.restore(worker.boot_snapshot());
  // The reboot re-points dirty pages at the shared snapshot; the private
  // buffers stay allocated (hot pages re-materialize without malloc), so
  // the footprint equals the dirty high-water mark, not the image size.
  EXPECT_LT(worker.space().phys().private_pages(),
            worker.space().phys().num_pages() / 4);
  // Post-reboot behavior matches the donor running the same syscall.
  const Event wev = worker.syscall(Syscall::kGetpid);
  const Event dev = donor.syscall(Syscall::kGetpid);
  EXPECT_EQ(wev.ret, dev.ret);
  EXPECT_EQ(worker.cpu().snapshot().words, donor.cpu().snapshot().words);
}

TEST_P(CowSuperblockMachineTest, DepositIntoCachedKernelCodeReDecodes) {
  const isa::Arch arch = GetParam();
  MachineOptions fast_opts;  // decode cache, superblocks, COW: all on
  MachineOptions slow_opts;
  slow_opts.decode_cache = false;
  slow_opts.superblock = false;
  slow_opts.cow_memory = false;
  Machine fast(arch, fast_opts);
  Machine slow(arch, slow_opts);

  // Warm both caches over the syscall dispatch path.
  fast.syscall(Syscall::kGetpid);
  slow.syscall(Syscall::kGetpid);
  ASSERT_GT(fast.cpu().superblock_stats().dispatches, 0u);

  // Deposit a flip into the first instruction of the dispatch function —
  // code that is cached in both the decode and superblock caches and will
  // be re-executed by the next syscall.
  const Addr target = fast.image().function(KernelEntryPoints::kDispatch).addr;
  fast.space().vflip_bit(target, 1);
  slow.space().vflip_bit(target, 1);

  // Whatever the corrupted instruction now does (runs differently, traps,
  // crashes), the cached machine must do exactly the same thing as the
  // cache-free one.
  fast.syscall(Syscall::kGetpid);
  slow.syscall(Syscall::kGetpid);
  EXPECT_EQ(fast.cpu().snapshot().words, slow.cpu().snapshot().words);
  EXPECT_EQ(fast.cpu().snapshot().cycles, slow.cpu().snapshot().cycles);
  // The stale entries were detected, not silently replayed.
  EXPECT_GE(fast.cpu().superblock_stats().invalidations +
                fast.cpu().decode_cache_stats().invalidations,
            1u);
}

INSTANTIATE_TEST_SUITE_P(BothArches, CowSuperblockMachineTest,
                         ::testing::Values(isa::Arch::kCisca,
                                           isa::Arch::kRiscf),
                         [](const auto& info) {
                           return std::string(info.param == isa::Arch::kCisca
                                                  ? "cisca"
                                                  : "riscf");
                         });

}  // namespace
}  // namespace kfi::kernel
