// End-to-end smoke tests: boot both simulated machines and drive the
// kernel through every system call, verifying functional correctness in
// the absence of injected faults.  Everything downstream (injection
// campaigns) assumes a fault-free kernel behaves identically to this.
#include <gtest/gtest.h>

#include "kernel/abi.hpp"
#include "kernel/layout.hpp"
#include "kernel/machine.hpp"
#include "workload/workload.hpp"

namespace kfi::kernel {
namespace {

class MachineSmokeTest : public ::testing::TestWithParam<isa::Arch> {
 protected:
  MachineSmokeTest() : machine_(GetParam(), MachineOptions{}) {}

  u32 must_syscall(Syscall nr, u32 a0 = 0, u32 a1 = 0, u32 a2 = 0) {
    const Event ev = machine_.syscall(nr, a0, a1, a2);
    EXPECT_EQ(ev.kind, EventKind::kSyscallDone)
        << "crash: " << (ev.kind == EventKind::kCrash
                             ? crash_cause_name(ev.crash.cause) + " at pc=" +
                                   std::to_string(ev.crash.pc) + " detail=" +
                                   ev.crash.detail
                             : "non-crash");
    return ev.ret;
  }

  Machine machine_;
};

TEST_P(MachineSmokeTest, GetpidReturnsTask0Pid) {
  EXPECT_EQ(must_syscall(Syscall::kGetpid), 1u);
}

TEST_P(MachineSmokeTest, YieldCompletes) {
  EXPECT_EQ(must_syscall(Syscall::kYield), 0u);
}

TEST_P(MachineSmokeTest, ReadReturnsDiskPattern) {
  const Addr buf = kUserBufBase;
  const u32 n = must_syscall(Syscall::kRead, 0, buf, kBlockSize);
  ASSERT_EQ(n, kBlockSize);
  // File 0 starts at disk block 0; pattern byte = (block*31 + i*7 + 3).
  for (u32 i = 0; i < kBlockSize; ++i) {
    EXPECT_EQ(machine_.space().vread8(buf + i), (i * 7 + 3) & 0xFF) << i;
  }
}

TEST_P(MachineSmokeTest, SequentialReadsAdvancePosition) {
  const Addr buf = kUserBufBase;
  must_syscall(Syscall::kRead, 0, buf, kBlockSize);
  must_syscall(Syscall::kRead, 0, buf, kBlockSize);
  // Third block of file 0 = disk block 2.
  must_syscall(Syscall::kRead, 0, buf, kBlockSize);
  for (u32 i = 0; i < kBlockSize; ++i) {
    EXPECT_EQ(machine_.space().vread8(buf + i), (2 * 31 + i * 7 + 3) & 0xFF);
  }
}

TEST_P(MachineSmokeTest, WriteReadBackRoundTrip) {
  const Addr wbuf = kUserBufBase;
  const Addr rbuf = kUserBufBase + 0x800;
  for (u32 i = 0; i < kBlockSize; ++i) {
    machine_.space().vwrite8(wbuf + i, static_cast<u8>(0xA0 ^ i));
  }
  ASSERT_EQ(must_syscall(Syscall::kWrite, 1, wbuf, kBlockSize), kBlockSize);
  // Rewind file 1 and read back through the cache.
  machine_.write_global("file_table", 0, 1, "pos");
  ASSERT_EQ(must_syscall(Syscall::kRead, 1, rbuf, kBlockSize), kBlockSize);
  for (u32 i = 0; i < kBlockSize; ++i) {
    EXPECT_EQ(machine_.space().vread8(rbuf + i), (0xA0 ^ i) & 0xFF) << i;
  }
}

TEST_P(MachineSmokeTest, AllocFreeRoundTrip) {
  const u32 page = must_syscall(Syscall::kAlloc);
  ASSERT_NE(page, 0u);
  EXPECT_EQ(machine_.space().vread32(page), page ^ 0x5A5A5A5Au);
  EXPECT_EQ(must_syscall(Syscall::kFree, page), 0u);
}

TEST_P(MachineSmokeTest, AllocExhaustionReturnsZero) {
  u32 last = 0;
  for (u32 i = 0; i < kNumPages; ++i) {
    last = must_syscall(Syscall::kAlloc);
    EXPECT_NE(last, 0u);
  }
  EXPECT_EQ(must_syscall(Syscall::kAlloc), 0u);
}

TEST_P(MachineSmokeTest, SendRecvLoopback) {
  const Addr sbuf = kUserBufBase;
  const Addr rbuf = kUserBufBase + 0x800;
  const u32 len = 48;
  for (u32 i = 0; i < len; ++i) {
    machine_.space().vwrite8(sbuf + i, static_cast<u8>(i * 3 + 1));
  }
  ASSERT_EQ(must_syscall(Syscall::kSend, sbuf, len), len);
  // Delivery happens in ksoftirqd; yield until the packet arrives.
  u32 got = 0;
  for (u32 tries = 0; tries < 64 && got == 0; ++tries) {
    must_syscall(Syscall::kYield);
    got = must_syscall(Syscall::kRecv, rbuf, 256);
  }
  ASSERT_EQ(got, len);
  for (u32 i = 0; i < len; ++i) {
    EXPECT_EQ(machine_.space().vread8(rbuf + i), (i * 3 + 1) & 0xFF) << i;
  }
}

TEST_P(MachineSmokeTest, KernelThreadsRunAndJournalCommits) {
  // Drive enough syscalls (and therefore timer ticks + schedules) that
  // kupdate flushes and kjournald commits at least once.
  const Addr buf = kUserBufBase;
  for (u32 i = 0; i < 400; ++i) {
    must_syscall(Syscall::kWrite, 1, buf, kBlockSize);
    must_syscall(Syscall::kYield);
  }
  EXPECT_GT(machine_.read_global("jiffies"), 0u);
  EXPECT_GT(machine_.read_global("flush_count"), 0u);
  EXPECT_GT(machine_.read_global("commit_count"), 0u);
  EXPECT_GT(machine_.read_global("intr_count"), 0u);
}

TEST_P(MachineSmokeTest, SnapshotRestoreIsBitExact) {
  const Addr buf = kUserBufBase;
  must_syscall(Syscall::kRead, 0, buf, kBlockSize);
  must_syscall(Syscall::kAlloc);
  machine_.restore(machine_.boot_snapshot());
  // After "reboot", state matches a fresh machine: same first read result.
  EXPECT_EQ(machine_.read_global("syscall_count"), 0u);
  const u32 n = must_syscall(Syscall::kRead, 0, buf, kBlockSize);
  EXPECT_EQ(n, kBlockSize);
  EXPECT_EQ(machine_.read_global("syscall_count"), 1u);
}

TEST_P(MachineSmokeTest, ProfilingCountsHotFunctions) {
  machine_.set_profiling(true);
  const Addr buf = kUserBufBase;
  for (u32 i = 0; i < 20; ++i) must_syscall(Syscall::kRead, 0, buf, kBlockSize);
  const auto& counts = machine_.profile_counts();
  u64 dispatch_count = 0, memcpy_count = 0;
  for (u32 i = 0; i < machine_.image().functions.size(); ++i) {
    if (machine_.image().functions[i].name == "sys_dispatch")
      dispatch_count = counts[i];
    if (machine_.image().functions[i].name == "memcpy_user")
      memcpy_count = counts[i];
  }
  EXPECT_GE(dispatch_count, 20u);
  EXPECT_GE(memcpy_count, 20u);
}

TEST_P(MachineSmokeTest, BadFdReturnsError) {
  EXPECT_EQ(must_syscall(Syscall::kRead, 99, kUserBufBase, kBlockSize),
            kErrReturn);
}

INSTANTIATE_TEST_SUITE_P(BothArchs, MachineSmokeTest,
                         ::testing::Values(isa::Arch::kCisca,
                                           isa::Arch::kRiscf),
                         [](const auto& info) {
                           return info.param == isa::Arch::kCisca ? "cisca"
                                                                  : "riscf";
                         });

}  // namespace
}  // namespace kfi::kernel

namespace kfi::kernel {
namespace {

// A fault-free kernel must survive the full workload suite across many
// seeds and timer alignments — any baseline crash would contaminate every
// injection campaign (this guards the class of bug where the timer
// interrupt glue corrupted live registers).
class FaultFreeBaselineTest
    : public ::testing::TestWithParam<std::tuple<isa::Arch, int>> {};

TEST_P(FaultFreeBaselineTest, SuiteRunsCleanAcrossSeeds) {
  const auto& [arch, seed] = GetParam();
  MachineOptions opts;
  opts.seed = 0x9000 + static_cast<u64>(seed) * 77;
  Machine machine(arch, opts);
  auto wl = workload::make_suite(1);
  wl->reset(static_cast<u64>(seed) * 1337 + 1);
  u32 issued = 0;
  while (auto req = wl->next(machine)) {
    const Event ev = machine.syscall(req->nr, req->a0, req->a1, req->a2);
    ASSERT_EQ(ev.kind, EventKind::kSyscallDone)
        << "baseline crash after " << issued << " syscalls: "
        << crash_cause_name(ev.crash.cause) << " pc=" << std::hex
        << ev.crash.pc << " addr=" << ev.crash.addr;
    ASSERT_TRUE(wl->check(machine, ev.ret)) << "baseline FSV @" << issued;
    ++issued;
  }
  EXPECT_TRUE(wl->final_check(machine));
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, FaultFreeBaselineTest,
    ::testing::Combine(::testing::Values(isa::Arch::kCisca, isa::Arch::kRiscf),
                       ::testing::Range(0, 6)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == isa::Arch::kCisca
                             ? "cisca_seed"
                             : "riscf_seed") +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace kfi::kernel
