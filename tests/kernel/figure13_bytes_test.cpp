// The generated spinlock check must match the paper's Figure 13 byte
// pattern on the P4-like machine: cmpl $0xdead4ead, <abs>; je; ud2.
#include <gtest/gtest.h>

#include "kernel/machine.hpp"

namespace kfi::kernel {
namespace {

TEST(Figure13BytesTest, DispatchContainsTheSpinlockCheckSequence) {
  const kir::Image image = build_kernel_image(isa::Arch::kCisca);
  const auto& fn = image.function("sys_dispatch");
  const u32 base = fn.addr - image.code_base;
  bool found = false;
  for (u32 off = base; off + 10 <= base + fn.size; ++off) {
    // 81 3D <addr32> AD 4E AD DE : cmpl $0xdead4ead, moffs.
    if (image.code[off] == 0x81 && image.code[off + 1] == 0x3D &&
        image.code[off + 6] == 0xAD && image.code[off + 7] == 0x4E &&
        image.code[off + 8] == 0xAD && image.code[off + 9] == 0xDE) {
      found = true;
      // Followed (after the je rel32) by ud2: 0F 84 .. .. .. .. 0F 0B.
      EXPECT_EQ(image.code[off + 10], 0x0F);
      EXPECT_EQ(image.code[off + 11], 0x84);
      EXPECT_EQ(image.code[off + 16], 0x0F);
      EXPECT_EQ(image.code[off + 17], 0x0B);
      break;
    }
  }
  EXPECT_TRUE(found) << "no Figure-13 check sequence in sys_dispatch";
}

TEST(Figure13BytesTest, RiscfBugWordsFollowMagicChecks) {
  const kir::Image image = build_kernel_image(isa::Arch::kRiscf);
  // Zero words (BUG) must exist in text and be preceded by a conditional
  // branch (the beq that skips them on a healthy magic).
  const auto& fn = image.function("sys_dispatch");
  const u32 base = fn.addr - image.code_base;
  bool found = false;
  for (u32 off = base; off + 4 <= base + fn.size; off += 4) {
    const u32 word = (static_cast<u32>(image.code[off]) << 24) |
                     (static_cast<u32>(image.code[off + 1]) << 16) |
                     (static_cast<u32>(image.code[off + 2]) << 8) |
                     image.code[off + 3];
    if (word == 0 && off > base + 4) {
      const u32 prev = (static_cast<u32>(image.code[off - 4]) << 24) |
                       (static_cast<u32>(image.code[off - 3]) << 16) |
                       (static_cast<u32>(image.code[off - 2]) << 8) |
                       image.code[off - 1];
      EXPECT_EQ(prev >> 26, 16u);  // bc (the beq over the BUG)
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found) << "no BUG word in sys_dispatch";
}

}  // namespace
}  // namespace kfi::kernel
