// The shared-image boot path: many Machines booting from one built
// kir::Image must behave exactly like machines that ran codegen
// themselves, the image must stay immutable under injections (bit flips
// corrupt the copy loaded into simulated memory, never the image), and
// machines sharing an image must stay bit-independent of each other.
#include <gtest/gtest.h>

#include "inject/campaign.hpp"
#include "kernel/abi.hpp"
#include "kernel/layout.hpp"
#include "kernel/machine.hpp"
#include "workload/workload.hpp"

namespace kfi::kernel {
namespace {

class SharedImageTest : public ::testing::TestWithParam<isa::Arch> {};

TEST_P(SharedImageTest, SharedBootMatchesOwnCodegenBoot) {
  const isa::Arch arch = GetParam();
  const kir::ImagePtr image = build_shared_kernel_image(arch);
  MachineOptions opts;
  Machine own(arch, opts);            // runs codegen itself
  Machine shared(arch, opts, image);  // boots from the shared image
  EXPECT_EQ(&shared.image(), image.get());
  EXPECT_EQ(*own.boot_snapshot().memory, *shared.boot_snapshot().memory);
  EXPECT_EQ(own.boot_snapshot().cpu.words, shared.boot_snapshot().cpu.words);
  EXPECT_EQ(own.boot_snapshot().cpu.cycles, shared.boot_snapshot().cpu.cycles);
  EXPECT_EQ(own.boot_snapshot().rng_state, shared.boot_snapshot().rng_state);
}

TEST_P(SharedImageTest, InjectionLeavesCoTenantAndImageUntouched) {
  const isa::Arch arch = GetParam();
  const kir::ImagePtr image = build_shared_kernel_image(arch);
  const std::vector<u8> code_before = image->code;
  const std::vector<u8> data_before = image->data;
  MachineOptions opts;
  Machine victim(arch, opts, image);
  Machine witness(arch, opts, image);
  const MachineSnapshot witness_boot = witness.boot_snapshot();

  // Corrupt the victim's text and data aggressively and run syscalls;
  // whether they crash is irrelevant here.
  for (u32 i = 0; i < 64; ++i) {
    victim.space().vflip_bit(kTextBase + 16 * i, i % 8);
    victim.space().vflip_bit(kDataBase + 4 * i, (i + 3) % 8);
  }
  for (u32 i = 0; i < 4; ++i) {
    victim.syscall(Syscall::kGetpid);
    if (!victim.idle()) break;  // crashed mid-flight; good enough
  }

  // The shared image is immutable: the flips only hit the victim's copy
  // in simulated memory.
  EXPECT_EQ(image->code, code_before);
  EXPECT_EQ(image->data, data_before);
  // The co-tenant machine is bit-identical to its boot state.
  const MachineSnapshot witness_now = witness.snapshot();
  EXPECT_EQ(*witness_now.memory, *witness_boot.memory);
  EXPECT_EQ(witness_now.cpu.words, witness_boot.cpu.words);
  // And still runs the full fault-free workload.
  auto wl = workload::make_suite(1);
  wl->reset(1);
  while (auto req = wl->next(witness)) {
    const Event ev = witness.syscall(req->nr, req->a0, req->a1, req->a2);
    ASSERT_EQ(ev.kind, EventKind::kSyscallDone);
    ASSERT_TRUE(wl->check(witness, ev.ret));
  }
  EXPECT_TRUE(wl->final_check(witness));
}

TEST_P(SharedImageTest, CoTenantsReproduceTheSameInjectionIndependently) {
  // Two machines sharing one image, each running the same injection with
  // snapshot/restore in between, must produce the bit-identical record —
  // the property that makes the engine's worker Machines exchangeable.
  const isa::Arch arch = GetParam();
  const kir::ImagePtr image = build_shared_kernel_image(arch);
  MachineOptions opts;
  Machine m1(arch, opts, image);
  Machine m2(arch, opts, image);
  auto wl1 = workload::make_suite(1);
  auto wl2 = workload::make_suite(1);

  const inject::InjectionTarget target =
      inject::InjectionTarget::data(image->objects.front().addr, 7);

  const inject::InjectionRecord r1 =
      inject::run_single_injection(m1, *wl1, target, 5);
  const inject::InjectionRecord r2 =
      inject::run_single_injection(m2, *wl2, target, 5);
  EXPECT_EQ(r1.outcome, r2.outcome);
  EXPECT_EQ(r1.activated, r2.activated);
  EXPECT_EQ(r1.activation_cycle, r2.activation_cycle);
  EXPECT_EQ(r1.cycles_to_crash, r2.cycles_to_crash);
  EXPECT_EQ(r1.crash.cause, r2.crash.cause);
  EXPECT_EQ(r1.crash.pc, r2.crash.pc);
  EXPECT_EQ(r1.syscalls_completed, r2.syscalls_completed);
}

INSTANTIATE_TEST_SUITE_P(BothArchs, SharedImageTest,
                         ::testing::Values(isa::Arch::kCisca,
                                           isa::Arch::kRiscf),
                         [](const auto& info) {
                           return info.param == isa::Arch::kCisca
                                      ? std::string("cisca")
                                      : std::string("riscf");
                         });

TEST(SharedImageTest, ArchMismatchIsRejected) {
  const kir::ImagePtr image = build_shared_kernel_image(isa::Arch::kCisca);
  MachineOptions opts;
  EXPECT_THROW(Machine(isa::Arch::kRiscf, opts, image), InternalError);
  EXPECT_THROW(Machine(isa::Arch::kCisca, opts, nullptr), InternalError);
}

}  // namespace
}  // namespace kfi::kernel
