// Machine-level tests of the per-architecture data-layout semantics that
// carry the paper's data-error masking argument: packed fields on cisca,
// word-per-item with never-accessed padding on riscf.
#include <gtest/gtest.h>

#include "kernel/abi.hpp"
#include "kernel/layout.hpp"
#include "kernel/machine.hpp"
#include "kir/backend.hpp"

namespace kfi::kernel {
namespace {

TEST(LayoutSemanticsTest, TaskStructPackingDiffersAsInThePaper) {
  Machine p4(isa::Arch::kCisca, MachineOptions{});
  Machine g4(isa::Arch::kRiscf, MachineOptions{});
  const auto& p4_tasks = p4.image().object("task_structs");
  const auto& g4_tasks = g4.image().object("task_structs");
  // cisca packs state/flags/pid into the first word; riscf gives each its
  // own word.
  EXPECT_EQ(p4_tasks.field_named("flags").offset, 1u);
  EXPECT_EQ(p4_tasks.field_named("pid").offset, 2u);
  EXPECT_EQ(g4_tasks.field_named("flags").offset, 4u);
  EXPECT_EQ(g4_tasks.field_named("pid").offset, 8u);
}

TEST(LayoutSemanticsTest, RiscfPaddingFlipsAreInvisibleToTheKernel) {
  // Flip all padding bits of a u8 field's word on the G4-like machine and
  // run syscalls: the kernel must behave identically (the masking
  // mechanism behind the paper's 78.9% not-manifested stack/data rates).
  Machine machine(isa::Arch::kRiscf, MachineOptions{});
  const auto& tasks = machine.image().object("task_structs");
  const auto& state = tasks.field_named("state");
  ASSERT_EQ(state.storage_bytes, 4u);
  ASSERT_EQ(static_cast<u32>(state.width), 1u);
  const Addr word = tasks.addr + state.offset;  // task 0's state slot
  // Big-endian: the value byte is the slot's LAST byte; the first three
  // are padding.
  machine.space().vwrite8(word + 0, 0xFF);
  machine.space().vwrite8(word + 1, 0xFF);
  machine.space().vwrite8(word + 2, 0xFF);
  for (int i = 0; i < 50; ++i) {
    const Event ev = machine.syscall(Syscall::kYield);
    ASSERT_EQ(ev.kind, EventKind::kSyscallDone);
  }
  // The kernel's reads saw state == 0 throughout (task 0 kept running),
  // and the host-side accessor agrees.
  EXPECT_EQ(machine.read_global("task_structs", 0, "state"), 0u);
}

TEST(LayoutSemanticsTest, CiscaSameBitsArePartOfAdjacentFields) {
  // On the packed P4-like layout those same three bytes hold flags, and
  // pid — corrupting them corrupts REAL state (the density argument).
  Machine machine(isa::Arch::kCisca, MachineOptions{});
  const auto& tasks = machine.image().object("task_structs");
  const Addr state_addr = tasks.addr + tasks.field_named("state").offset;
  machine.space().vwrite8(state_addr + 2, 0xFF);  // this is pid's low byte
  EXPECT_EQ(machine.read_global("task_structs", 0, "pid"), 0xFFu | 0x0000u);
  const Event ev = machine.syscall(Syscall::kGetpid);
  ASSERT_EQ(ev.kind, EventKind::kSyscallDone);
  EXPECT_EQ(ev.ret, 0xFFu);  // the corrupted pid is what userspace sees
}

TEST(LayoutSemanticsTest, WriteGlobalReadGlobalRoundTripAllWidths) {
  for (const auto arch : {isa::Arch::kCisca, isa::Arch::kRiscf}) {
    Machine machine(arch, MachineOptions{});
    machine.write_global("task_structs", 0x7, 2, "state");    // u8
    machine.write_global("task_structs", 0xBEEF, 2, "pid");   // u16
    machine.write_global("task_structs", 0x12345678, 2, "timeout");  // u32
    EXPECT_EQ(machine.read_global("task_structs", 2, "state"), 0x7u);
    EXPECT_EQ(machine.read_global("task_structs", 2, "pid"), 0xBEEFu);
    EXPECT_EQ(machine.read_global("task_structs", 2, "timeout"),
              0x12345678u);
  }
}

TEST(LayoutSemanticsTest, StackSizesMatchThePaper) {
  // "the average size of the runtime kernel stack on the G4 is twice that
  // of the P4" — Linux used 4 KB (x86) and 8 KB (PPC) kernel stacks.
  EXPECT_EQ(stack_size(isa::Arch::kCisca), 4096u);
  EXPECT_EQ(stack_size(isa::Arch::kRiscf), 8192u);
  // Guard pages separate the per-task stacks.
  Machine machine(isa::Arch::kRiscf, MachineOptions{});
  EXPECT_FALSE(machine.space().mmu().is_mapped(
      machine.task_stack_base(1) - 4096));
  EXPECT_TRUE(machine.space().mmu().is_mapped(machine.task_stack_base(1)));
}

TEST(LayoutSemanticsTest, BulkArraysLiveOutsideTheInjectionWindow) {
  for (const auto arch : {isa::Arch::kCisca, isa::Arch::kRiscf}) {
    Machine machine(arch, MachineOptions{});
    for (const char* name :
         {"buffer_data", "disk_blocks", "page_pool", "skb_data"}) {
      const auto& obj = machine.image().object(name);
      EXPECT_FALSE(obj.structural) << name;
      EXPECT_GE(obj.addr, machine.image().data_base + kir::kBulkDataOffset)
          << name;
    }
  }
}

}  // namespace
}  // namespace kfi::kernel
