#include "mem/mmu.hpp"

#include <gtest/gtest.h>

namespace kfi::mem {
namespace {

PagePerms rw() { return {.read = true, .write = true}; }
PagePerms rx() { return {.read = true, .execute = true}; }

TEST(MmuTest, UnmappedAccessFaults) {
  Mmu mmu;
  const auto r = mmu.translate(0x1000, 4, Access::kRead);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.fault->kind, FaultKind::kUnmapped);
  EXPECT_EQ(r.fault->addr, 0x1000u);
}

TEST(MmuTest, MappedPageTranslates) {
  Mmu mmu;
  mmu.map(0xC0000000u, 0x5000, 2, rw());
  const auto r = mmu.translate(0xC0000123u, 4, Access::kRead);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.phys, 0x5123u);
  const auto r2 = mmu.translate(0xC0001FF0u, 4, Access::kWrite);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.phys, 0x6FF0u);
}

TEST(MmuTest, PermissionFaults) {
  Mmu mmu;
  mmu.map(0x1000, 0x2000, 1, rx());
  EXPECT_TRUE(mmu.translate(0x1000, 4, Access::kRead).ok());
  EXPECT_TRUE(mmu.translate(0x1000, 4, Access::kExecute).ok());
  const auto w = mmu.translate(0x1000, 4, Access::kWrite);
  ASSERT_FALSE(w.ok());
  EXPECT_EQ(w.fault->kind, FaultKind::kNoWrite);
}

TEST(MmuTest, NoExecuteFault) {
  Mmu mmu;
  mmu.map(0x1000, 0x2000, 1, rw());
  const auto x = mmu.translate(0x1000, 4, Access::kExecute);
  ASSERT_FALSE(x.ok());
  EXPECT_EQ(x.fault->kind, FaultKind::kNoExecute);
}

TEST(MmuTest, BusRegionRaisesBusFault) {
  Mmu mmu;
  PagePerms bus;
  bus.bus = true;
  mmu.map(0xFE000000u, 0x3000, 1, bus);
  const auto r = mmu.translate(0xFE000010u, 4, Access::kRead);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.fault->kind, FaultKind::kBusRegion);
}

TEST(MmuTest, PageCrossingAccessChecksBothPages) {
  Mmu mmu;
  mmu.map(0x1000, 0x4000, 1, rw());  // only one page mapped
  const auto r = mmu.translate(0x1FFE, 4, Access::kRead);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.fault->kind, FaultKind::kUnmapped);
  EXPECT_EQ(r.fault->addr, 0x2001u);  // the first unmapped byte's page
}

TEST(MmuTest, PageCrossingAccessOkOnContiguousFrames) {
  Mmu mmu;
  mmu.map(0x1000, 0x4000, 2, rw());
  const auto r = mmu.translate(0x1FFE, 4, Access::kRead);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.phys, 0x4FFEu);
}

TEST(MmuTest, UnmapRemovesTranslation) {
  Mmu mmu;
  mmu.map(0x1000, 0x4000, 1, rw());
  EXPECT_TRUE(mmu.is_mapped(0x1000));
  mmu.unmap(0x1000, 1);
  EXPECT_FALSE(mmu.is_mapped(0x1000));
  EXPECT_FALSE(mmu.translate(0x1000, 1, Access::kRead).ok());
}

TEST(MmuTest, GuardPageBetweenMappingsFaults) {
  // The per-task kernel stacks are separated by unmapped guard pages; a
  // stack overrun must fault rather than silently spill.
  Mmu mmu;
  mmu.map(0x10000, 0x4000, 1, rw());
  mmu.map(0x12000, 0x5000, 1, rw());
  EXPECT_TRUE(mmu.translate(0x10000, 4, Access::kRead).ok());
  EXPECT_FALSE(mmu.translate(0x11000, 4, Access::kRead).ok());
  EXPECT_TRUE(mmu.translate(0x12000, 4, Access::kRead).ok());
}

}  // namespace
}  // namespace kfi::mem
