// Copy-on-write page sharing contract of PhysicalMemory: snapshots are
// shared immutable buffers that pages alias until first write, so the
// resident footprint of a machine rebooting from a shared snapshot is its
// dirty working set, not a full memory image.  COW is a pure memory
// optimization — contents, page write-versions, and restore semantics are
// bit-identical with it on or off.
#include <gtest/gtest.h>

#include "mem/phys_mem.hpp"

namespace kfi::mem {
namespace {

constexpr u32 kSize = 8 * kPageSize;

TEST(CowTest, SharedSnapshotReleasesPrivateStorage) {
  PhysicalMemory pm(kSize);
  for (u32 page = 0; page < pm.num_pages(); ++page) {
    pm.write32(page * kPageSize, 0xA0B0C0D0u + page, Endian::kLittle);
  }
  EXPECT_EQ(pm.private_pages(), pm.num_pages());
  const auto snap = pm.snapshot_shared();
  // Every page now aliases the snapshot buffer; contents are unchanged.
  EXPECT_EQ(pm.private_pages(), 0u);
  for (u32 page = 0; page < pm.num_pages(); ++page) {
    EXPECT_EQ(pm.read32(page * kPageSize, Endian::kLittle),
              0xA0B0C0D0u + page);
  }
}

TEST(CowTest, FirstWriteMaterializesOnlyTheTouchedPage) {
  PhysicalMemory pm(kSize);
  pm.write32(2 * kPageSize, 0x11111111u, Endian::kLittle);
  const auto snap = pm.snapshot_shared();
  const u64 ver_before = pm.page_version(2);

  pm.write8(2 * kPageSize, 0x7F);
  EXPECT_EQ(pm.private_pages(), 1u);
  EXPECT_GT(pm.page_version(2), ver_before);  // caches must re-decode
  EXPECT_EQ(pm.read8(2 * kPageSize), 0x7F);

  // The shared snapshot buffer is immutable: a second memory restored
  // from it still sees the original bytes.
  PhysicalMemory other(kSize);
  other.restore(snap);
  EXPECT_EQ(other.read32(2 * kPageSize, Endian::kLittle), 0x11111111u);
}

TEST(CowTest, BaselineRestoreRepointsDirtyPagesAndBumpsVersions) {
  PhysicalMemory pm(kSize);
  pm.write32(0, 0xCAFEF00Du, Endian::kLittle);
  const auto snap = pm.snapshot_shared();

  pm.write32(0, 0xDEADBEEFu, Endian::kLittle);
  pm.write8(3 * kPageSize + 7, 0x42);
  const u64 ver0 = pm.page_version(0);
  const u64 ver3 = pm.page_version(3);

  pm.restore(snap);
  EXPECT_EQ(pm.last_restore_pages(), 2u);  // only the two dirty pages
  EXPECT_EQ(pm.read32(0, Endian::kLittle), 0xCAFEF00Du);
  EXPECT_EQ(pm.read8(3 * kPageSize + 7), 0x00);
  // The reboot rewrote those pages, so their versions must move again.
  EXPECT_GT(pm.page_version(0), ver0);
  EXPECT_GT(pm.page_version(3), ver3);
  // Private buffers are retained for re-materialization, so the resident
  // count stays at the dirty high-water mark rather than re-allocating.
  EXPECT_LE(pm.private_pages(), 2u);
}

TEST(CowTest, ForeignSnapshotRestoreAdoptsAndReleases) {
  PhysicalMemory pm(kSize);
  pm.write32(0, 1, Endian::kLittle);
  const auto snap_a = pm.snapshot_shared();
  pm.write32(0, 2, Endian::kLittle);
  const auto snap_b = pm.snapshot_shared();  // baseline is now b

  pm.write32(4 * kPageSize, 99, Endian::kLittle);
  pm.restore(snap_a);  // non-baseline: full adoption
  EXPECT_EQ(pm.read32(0, Endian::kLittle), 1u);
  EXPECT_EQ(pm.read32(4 * kPageSize, Endian::kLittle), 0u);
  EXPECT_EQ(pm.private_pages(), 0u);  // adoption re-points every page
}

TEST(CowTest, DisabledCowIsBitIdenticalInContentAndVersions) {
  // The same operation sequence on a COW and a non-COW memory must yield
  // identical bytes and identical page write-versions (the decode and
  // superblock caches key on versions, so they must not diverge).
  PhysicalMemory cow(kSize), flat(kSize);
  flat.set_cow_enabled(false);
  EXPECT_FALSE(flat.cow_enabled());
  EXPECT_TRUE(cow.cow_enabled());

  for (PhysicalMemory* pm : {&cow, &flat}) {
    pm->write32(100, 0x01020304u, Endian::kBig);
    pm->write_bytes(2 * kPageSize - 2, reinterpret_cast<const u8*>("abcd"),
                    4);  // page-straddling write
  }
  const auto cow_snap = cow.snapshot_shared();
  const auto flat_snap = flat.snapshot_shared();
  for (PhysicalMemory* pm : {&cow, &flat}) {
    pm->flip_bit(100, 3);
    pm->write8(5 * kPageSize + 1, 0xEE);
  }
  cow.restore(cow_snap);
  flat.restore(flat_snap);

  EXPECT_EQ(cow.snapshot(), flat.snapshot());
  for (u32 page = 0; page < cow.num_pages(); ++page) {
    EXPECT_EQ(cow.page_version(page), flat.page_version(page))
        << "page " << page;
  }
  // And the footprints differ exactly as advertised.
  EXPECT_EQ(flat.private_pages(), flat.num_pages());
  EXPECT_LT(cow.private_pages(), cow.num_pages());
}

}  // namespace
}  // namespace kfi::mem
