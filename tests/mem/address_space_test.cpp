#include "mem/address_space.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace kfi::mem {
namespace {

TEST(AddressSpaceTest, MapRegionAllocatesFrames) {
  AddressSpace space(64 * 1024, Endian::kLittle);
  const Region& a = space.map_region("a", 0x10000, 4096, {.read = true});
  const Region& b = space.map_region("b", 0x20000, 4096, {.read = true});
  EXPECT_EQ(a.size, 4096u);
  EXPECT_EQ(b.size, 4096u);
  // Distinct regions get distinct physical frames.
  space.vwrite8(0x10000, 1);
  EXPECT_EQ(space.vread8(0x20000), 0);
}

TEST(AddressSpaceTest, RegionLookupByAddressAndName) {
  AddressSpace space(64 * 1024, Endian::kBig);
  space.map_region("text", 0x1000, 8192, {.read = true, .execute = true});
  space.note_unmapped("null_page", 0, 4096);
  const Region* r = space.region_of(0x1FFF);
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->name, "text");
  EXPECT_EQ(space.region_of(0x0)->name, "null_page");
  EXPECT_EQ(space.region_of(0x100000), nullptr);
  EXPECT_NE(space.region_named("text"), nullptr);
  EXPECT_EQ(space.region_named("absent"), nullptr);
}

TEST(AddressSpaceTest, EndianRespectingWordAccess) {
  AddressSpace le(64 * 1024, Endian::kLittle);
  le.map_region("d", 0x1000, 4096, {.read = true, .write = true});
  le.vwrite32(0x1000, 0x01020304u);
  EXPECT_EQ(le.vread8(0x1000), 0x04);

  AddressSpace be(64 * 1024, Endian::kBig);
  be.map_region("d", 0x1000, 4096, {.read = true, .write = true});
  be.vwrite32(0x1000, 0x01020304u);
  EXPECT_EQ(be.vread8(0x1000), 0x01);
}

TEST(AddressSpaceTest, VflipBitFlipsMemory) {
  AddressSpace space(64 * 1024, Endian::kLittle);
  space.map_region("d", 0x1000, 4096, {.read = true, .write = true});
  space.vwrite8(0x1234, 0x0F);
  space.vflip_bit(0x1234, 7);
  EXPECT_EQ(space.vread8(0x1234), 0x8F);
}

TEST(AddressSpaceTest, HostAccessCanWriteThroughWriteProtection) {
  // The loader writes the read-only text region through the host facade.
  AddressSpace space(64 * 1024, Endian::kLittle);
  space.map_region("text", 0x1000, 4096, {.read = true, .execute = true});
  space.vwrite8(0x1000, 0x90);
  EXPECT_EQ(space.vread8(0x1000), 0x90);
  // The CPU-visible translation still denies writes.
  EXPECT_FALSE(space.translate(0x1000, 1, Access::kWrite).ok());
}

TEST(AddressSpaceTest, RunsOutOfPhysicalMemory) {
  AddressSpace space(8 * 1024, Endian::kLittle);  // 2 frames (1 reserved)
  space.map_region("a", 0x1000, 4096, {.read = true});
  EXPECT_THROW(space.map_region("b", 0x10000, 8192, {.read = true}),
               InternalError);
}

TEST(AddressSpaceTest, BulkBytesRoundTrip) {
  AddressSpace space(64 * 1024, Endian::kBig);
  space.map_region("d", 0x2000, 8192, {.read = true, .write = true});
  std::vector<u8> data(100);
  for (u32 i = 0; i < 100; ++i) data[i] = static_cast<u8>(i ^ 0x5A);
  space.vwrite_bytes(0x2F00, data.data(), 100);
  std::vector<u8> out(100);
  space.vread_bytes(0x2F00, out.data(), 100);
  EXPECT_EQ(out, data);
}

}  // namespace
}  // namespace kfi::mem
