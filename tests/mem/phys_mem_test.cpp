#include "mem/phys_mem.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace kfi::mem {
namespace {

TEST(PhysicalMemoryTest, ByteReadWrite) {
  PhysicalMemory pm(4096);
  pm.write8(0, 0xAB);
  pm.write8(4095, 0xCD);
  EXPECT_EQ(pm.read8(0), 0xAB);
  EXPECT_EQ(pm.read8(4095), 0xCD);
  EXPECT_EQ(pm.read8(100), 0);  // zero-initialized
}

TEST(PhysicalMemoryTest, LittleEndian32) {
  PhysicalMemory pm(64);
  pm.write32(0, 0x11223344u, Endian::kLittle);
  EXPECT_EQ(pm.read8(0), 0x44);
  EXPECT_EQ(pm.read8(3), 0x11);
  EXPECT_EQ(pm.read32(0, Endian::kLittle), 0x11223344u);
}

TEST(PhysicalMemoryTest, BigEndian32) {
  PhysicalMemory pm(64);
  pm.write32(0, 0x11223344u, Endian::kBig);
  EXPECT_EQ(pm.read8(0), 0x11);
  EXPECT_EQ(pm.read8(3), 0x44);
  EXPECT_EQ(pm.read32(0, Endian::kBig), 0x11223344u);
}

TEST(PhysicalMemoryTest, EndiannessesAreMirrored) {
  PhysicalMemory pm(64);
  pm.write32(0, 0xDEADBEEFu, Endian::kLittle);
  EXPECT_EQ(pm.read32(0, Endian::kBig), 0xEFBEADDEu);
  pm.write16(8, 0x1234, Endian::kBig);
  EXPECT_EQ(pm.read16(8, Endian::kLittle), 0x3412);
}

TEST(PhysicalMemoryTest, FlipBitChangesSingleMemoryBit) {
  PhysicalMemory pm(16);
  pm.write8(5, 0b1010);
  pm.flip_bit(5, 1);
  EXPECT_EQ(pm.read8(5), 0b1000);
  pm.flip_bit(5, 1);
  EXPECT_EQ(pm.read8(5), 0b1010);
}

TEST(PhysicalMemoryTest, OutOfRangeAccessThrows) {
  PhysicalMemory pm(16);
  EXPECT_THROW(pm.read8(16), InternalError);
  EXPECT_THROW(pm.read32(13, Endian::kLittle), InternalError);
  EXPECT_THROW(pm.write32(0xFFFFFFFFu, 0, Endian::kBig), InternalError);
}

TEST(PhysicalMemoryTest, SnapshotRestoreIsExact) {
  PhysicalMemory pm(128);
  for (u32 i = 0; i < 128; ++i) pm.write8(i, static_cast<u8>(i * 7));
  const auto snap = pm.snapshot();
  for (u32 i = 0; i < 128; ++i) pm.write8(i, 0);
  pm.restore(snap);
  for (u32 i = 0; i < 128; ++i) EXPECT_EQ(pm.read8(i), static_cast<u8>(i * 7));
}

TEST(PhysicalMemoryTest, BulkBytesRoundTrip) {
  PhysicalMemory pm(64);
  const u8 data[5] = {1, 2, 3, 4, 5};
  pm.write_bytes(10, data, 5);
  u8 out[5] = {};
  pm.read_bytes(10, out, 5);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], data[i]);
}

}  // namespace
}  // namespace kfi::mem
