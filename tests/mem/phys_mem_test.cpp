#include "mem/phys_mem.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace kfi::mem {
namespace {

TEST(PhysicalMemoryTest, ByteReadWrite) {
  PhysicalMemory pm(4096);
  pm.write8(0, 0xAB);
  pm.write8(4095, 0xCD);
  EXPECT_EQ(pm.read8(0), 0xAB);
  EXPECT_EQ(pm.read8(4095), 0xCD);
  EXPECT_EQ(pm.read8(100), 0);  // zero-initialized
}

TEST(PhysicalMemoryTest, LittleEndian32) {
  PhysicalMemory pm(64);
  pm.write32(0, 0x11223344u, Endian::kLittle);
  EXPECT_EQ(pm.read8(0), 0x44);
  EXPECT_EQ(pm.read8(3), 0x11);
  EXPECT_EQ(pm.read32(0, Endian::kLittle), 0x11223344u);
}

TEST(PhysicalMemoryTest, BigEndian32) {
  PhysicalMemory pm(64);
  pm.write32(0, 0x11223344u, Endian::kBig);
  EXPECT_EQ(pm.read8(0), 0x11);
  EXPECT_EQ(pm.read8(3), 0x44);
  EXPECT_EQ(pm.read32(0, Endian::kBig), 0x11223344u);
}

TEST(PhysicalMemoryTest, EndiannessesAreMirrored) {
  PhysicalMemory pm(64);
  pm.write32(0, 0xDEADBEEFu, Endian::kLittle);
  EXPECT_EQ(pm.read32(0, Endian::kBig), 0xEFBEADDEu);
  pm.write16(8, 0x1234, Endian::kBig);
  EXPECT_EQ(pm.read16(8, Endian::kLittle), 0x3412);
}

TEST(PhysicalMemoryTest, FlipBitChangesSingleMemoryBit) {
  PhysicalMemory pm(16);
  pm.write8(5, 0b1010);
  pm.flip_bit(5, 1);
  EXPECT_EQ(pm.read8(5), 0b1000);
  pm.flip_bit(5, 1);
  EXPECT_EQ(pm.read8(5), 0b1010);
}

TEST(PhysicalMemoryTest, OutOfRangeAccessThrows) {
  PhysicalMemory pm(16);
  EXPECT_THROW(pm.read8(16), InternalError);
  EXPECT_THROW(pm.read32(13, Endian::kLittle), InternalError);
  EXPECT_THROW(pm.write32(0xFFFFFFFFu, 0, Endian::kBig), InternalError);
}

TEST(PhysicalMemoryTest, SnapshotRestoreIsExact) {
  PhysicalMemory pm(128);
  for (u32 i = 0; i < 128; ++i) pm.write8(i, static_cast<u8>(i * 7));
  const auto snap = pm.snapshot();
  for (u32 i = 0; i < 128; ++i) pm.write8(i, 0);
  pm.restore(snap);
  for (u32 i = 0; i < 128; ++i) EXPECT_EQ(pm.read8(i), static_cast<u8>(i * 7));
}

TEST(PhysicalMemoryTest, BulkBytesRoundTrip) {
  PhysicalMemory pm(64);
  const u8 data[5] = {1, 2, 3, 4, 5};
  pm.write_bytes(10, data, 5);
  u8 out[5] = {};
  pm.read_bytes(10, out, 5);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], data[i]);
}

TEST(PhysicalMemoryTest, EveryWritePathBumpsPageVersions) {
  PhysicalMemory pm(4 * kPageSize);
  ASSERT_EQ(pm.num_pages(), 4u);
  u64 v0 = pm.page_version(0);
  pm.write8(0, 1);
  EXPECT_GT(pm.page_version(0), v0);

  v0 = pm.page_version(0);
  const u64 v1 = pm.page_version(1);
  // A straddling write bumps both pages it touches.
  pm.write32(kPageSize - 2, 0x01020304u, Endian::kBig);
  EXPECT_GT(pm.page_version(0), v0);
  EXPECT_GT(pm.page_version(1), v1);

  const u64 v2 = pm.page_version(2);
  pm.flip_bit(2 * kPageSize + 7, 3);
  EXPECT_GT(pm.page_version(2), v2);

  const u64 v3 = pm.page_version(3);
  const u8 data[3] = {9, 9, 9};
  pm.write_bytes(3 * kPageSize + 100, data, 3);
  EXPECT_GT(pm.page_version(3), v3);

  // Reads never bump.
  const u64 before = pm.page_version(0);
  (void)pm.read32(0, Endian::kLittle);
  u8 out[8];
  pm.read_bytes(0, out, 8);
  EXPECT_EQ(pm.page_version(0), before);
}

TEST(PhysicalMemoryTest, SharedSnapshotFastRestoreCopiesOnlyDirtyPages) {
  PhysicalMemory pm(8 * kPageSize);
  for (u32 p = 0; p < 8; ++p) pm.write8(p * kPageSize, static_cast<u8>(p + 1));
  const auto snap = pm.snapshot_shared();

  // Dirty a scattered subset of pages.
  pm.write8(1 * kPageSize + 5, 0xAA);
  pm.flip_bit(4 * kPageSize + 9, 2);
  pm.write32(6 * kPageSize, 0xDEADBEEFu, Endian::kBig);

  pm.restore(snap);
  EXPECT_EQ(pm.last_restore_pages(), 3u);
  for (u32 p = 0; p < 8; ++p) {
    EXPECT_EQ(pm.read8(p * kPageSize), static_cast<u8>(p + 1));
  }
  EXPECT_EQ(pm.read8(1 * kPageSize + 5), 0);
  // Page 6's first word reverts to its snapshot content: 0x07 then zeros.
  EXPECT_EQ(pm.read32(6 * kPageSize, Endian::kBig), 0x07000000u);

  // A restore with nothing dirty copies nothing.
  pm.restore(snap);
  EXPECT_EQ(pm.last_restore_pages(), 0u);
}

TEST(PhysicalMemoryTest, FastRestoreMatchesFullCopyByteForByte) {
  PhysicalMemory fast(4 * kPageSize);
  PhysicalMemory full(4 * kPageSize);
  for (u32 i = 0; i < 4 * kPageSize; i += 37) {
    fast.write8(i, static_cast<u8>(i));
    full.write8(i, static_cast<u8>(i));
  }
  const auto fast_snap = fast.snapshot_shared();
  const auto full_snap = full.snapshot_shared();
  // Dirty only the first two pages so the fast path has clean ones to skip.
  for (u32 i = 0; i < 2 * kPageSize; i += 91) {
    fast.write8(i, 0xEE);
    full.write8(i, 0xEE);
  }
  fast.restore(fast_snap);
  full.restore_full(full_snap);
  EXPECT_LT(fast.last_restore_pages(), fast.num_pages());
  EXPECT_EQ(full.last_restore_pages(), full.num_pages());
  for (u32 i = 0; i < 4 * kPageSize; ++i) {
    ASSERT_EQ(fast.read8(i), full.read8(i)) << "byte " << i;
  }
}

TEST(PhysicalMemoryTest, RestoreBumpsVersionsOfRewrittenPages) {
  // A restore rewrites page contents, so anything caching decoded bytes
  // must see the version move — for dirty pages on the fast path and for
  // every page on the full-copy path.
  PhysicalMemory pm(2 * kPageSize);
  const auto snap = pm.snapshot_shared();
  pm.write8(kPageSize, 0x55);
  const u64 dirty_v = pm.page_version(1);
  const u64 clean_v = pm.page_version(0);
  pm.restore(snap);
  EXPECT_GT(pm.page_version(1), dirty_v);
  EXPECT_EQ(pm.page_version(0), clean_v);  // untouched page: no bump
  const u64 v0 = pm.page_version(0);
  pm.restore_full(snap);
  EXPECT_GT(pm.page_version(0), v0);
}

TEST(PhysicalMemoryTest, ForeignSnapshotRestoresViaFullCopyAndRebases) {
  PhysicalMemory pm(2 * kPageSize);
  pm.write8(0, 1);
  const auto snap_a = pm.snapshot_shared();
  pm.write8(0, 2);
  const auto snap_b = pm.snapshot_shared();  // baseline is now b
  pm.write8(0, 3);
  pm.restore(snap_a);  // not the baseline: full copy, a becomes baseline
  EXPECT_EQ(pm.read8(0), 1);
  EXPECT_EQ(pm.last_restore_pages(), pm.num_pages());
  pm.write8(kPageSize, 7);
  pm.restore(snap_a);  // now the baseline: dirty-page path
  EXPECT_EQ(pm.last_restore_pages(), 1u);
  EXPECT_EQ(pm.read8(kPageSize), 0);
  EXPECT_EQ(pm.read8(0), 1);
  (void)snap_b;
}

TEST(PhysicalMemoryTest, LegacyVectorRestoreInvalidatesBaselineAndVersions) {
  PhysicalMemory pm(2 * kPageSize);
  const auto shared = pm.snapshot_shared();
  const auto legacy = pm.snapshot();
  const u64 v = pm.page_version(0);
  pm.restore(legacy);
  EXPECT_GT(pm.page_version(0), v);
  // The shared baseline was dropped: restoring it again is a full copy.
  pm.restore(shared);
  EXPECT_EQ(pm.last_restore_pages(), pm.num_pages());
}

TEST(PhysicalMemoryTest, PartialLastPageRestores) {
  // Memory whose size is not page-aligned: the last (short) page must
  // restore without touching out-of-range bytes.
  PhysicalMemory pm(kPageSize + 64);
  const auto snap = pm.snapshot_shared();
  pm.write8(kPageSize + 63, 0xFF);
  pm.restore(snap);
  EXPECT_EQ(pm.read8(kPageSize + 63), 0);
  EXPECT_EQ(pm.last_restore_pages(), 1u);
}

}  // namespace
}  // namespace kfi::mem
