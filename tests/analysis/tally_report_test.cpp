// Tests for the analysis layer: outcome tallying with the paper's
// percentage conventions, paper reference data integrity, and report
// rendering.
#include <gtest/gtest.h>

#include "analysis/paper_data.hpp"
#include "analysis/report.hpp"
#include "analysis/tally.hpp"

namespace kfi::analysis {
namespace {

using inject::CampaignKind;
using inject::InjectionRecord;
using inject::OutcomeCategory;

InjectionRecord record(OutcomeCategory outcome, bool activated,
                       kernel::CrashCause cause = kernel::CrashCause::kBadArea,
                       Cycles latency = 5000) {
  InjectionRecord r;
  r.outcome = outcome;
  r.activated = activated;
  if (outcome == OutcomeCategory::kKnownCrash) {
    r.crashed = true;
    r.crash.cause = cause;
    r.cycles_to_crash = latency;
  }
  return r;
}

TEST(TallyTest, CountsAndRates) {
  std::vector<InjectionRecord> records;
  for (int i = 0; i < 4; ++i)
    records.push_back(record(OutcomeCategory::kNotActivated, false));
  for (int i = 0; i < 3; ++i)
    records.push_back(record(OutcomeCategory::kNotManifested, true));
  records.push_back(record(OutcomeCategory::kKnownCrash, true));
  records.push_back(record(OutcomeCategory::kKnownCrash, true,
                           kernel::CrashCause::kStackOverflow, 2000));
  records.push_back(record(OutcomeCategory::kHangOrUnknownCrash, true));
  const OutcomeTally t = tally_records(records);
  EXPECT_EQ(t.injected, 10u);
  EXPECT_EQ(t.activated, 6u);
  EXPECT_TRUE(t.activation_known);
  EXPECT_DOUBLE_EQ(t.activation_rate(), 0.6);
  // Percentages over activated errors (the paper's convention).
  EXPECT_DOUBLE_EQ(t.fraction(OutcomeCategory::kKnownCrash), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(t.manifestation_rate(), 3.0 / 6.0);
  EXPECT_EQ(t.crash_causes.get("Bad Area"), 1u);
  EXPECT_EQ(t.crash_causes.get("Stack Overflow"), 1u);
  // Latency histogram: 2000 in <=3k, 5000 in <=10k.
  EXPECT_EQ(t.latency.count(0), 1u);
  EXPECT_EQ(t.latency.count(1), 1u);
}

TEST(TallyTest, RegisterCampaignUsesInjectedDenominator) {
  std::vector<InjectionRecord> records;
  for (int i = 0; i < 9; ++i) {
    InjectionRecord r = record(OutcomeCategory::kNotManifested, false);
    r.activation_known = false;
    records.push_back(r);
  }
  InjectionRecord crash = record(OutcomeCategory::kKnownCrash, true);
  crash.activation_known = false;
  records.push_back(crash);
  const OutcomeTally t = tally_records(records);
  EXPECT_FALSE(t.activation_known);
  EXPECT_EQ(t.denominator(), 10u);
  EXPECT_DOUBLE_EQ(t.manifestation_rate(), 0.1);
}

TEST(PaperDataTest, TableRowsMatchPublishedTotals) {
  // Spot-check exact transcription of Tables 5 and 6.
  const auto p4_stack = paper_table_row(isa::Arch::kCisca, CampaignKind::kStack);
  EXPECT_EQ(p4_stack.injected, 10143u);
  EXPECT_DOUBLE_EQ(p4_stack.activated_pct, 29.3);
  EXPECT_DOUBLE_EQ(p4_stack.known_crash_pct, 38.2);
  const auto g4_code = paper_table_row(isa::Arch::kRiscf, CampaignKind::kCode);
  EXPECT_EQ(g4_code.injected, 2188u);
  EXPECT_DOUBLE_EQ(g4_code.fsv_pct, 2.3);
  const auto g4_reg =
      paper_table_row(isa::Arch::kRiscf, CampaignKind::kRegister);
  EXPECT_LT(g4_reg.activated_pct, 0);  // N/A
}

TEST(PaperDataTest, CrashCauseDistributionsSumToRoughly100) {
  for (const auto arch : {isa::Arch::kCisca, isa::Arch::kRiscf}) {
    double overall = 0;
    for (const auto& [name, pct] : paper_overall_crash_causes(arch)) {
      overall += pct;
    }
    EXPECT_NEAR(overall, 100.0, 1.0) << isa::arch_name(arch);
    for (const auto kind : {CampaignKind::kStack, CampaignKind::kRegister,
                            CampaignKind::kData, CampaignKind::kCode}) {
      double total = 0;
      for (const auto& [name, pct] :
           paper_campaign_crash_causes(arch, kind)) {
        total += pct;
      }
      EXPECT_NEAR(total, 100.0, 1.5)
          << isa::arch_name(arch) << " " << campaign_kind_name(kind);
    }
  }
}

TEST(PaperDataTest, LatencyDistributionsHaveEightBucketsSumming100) {
  for (const auto arch : {isa::Arch::kCisca, isa::Arch::kRiscf}) {
    for (const auto kind : {CampaignKind::kStack, CampaignKind::kRegister,
                            CampaignKind::kData, CampaignKind::kCode}) {
      const auto dist = paper_latency_distribution(arch, kind);
      ASSERT_EQ(dist.size(), 8u);
      double total = 0;
      for (const double d : dist) total += d;
      EXPECT_NEAR(total, 100.0, 1.0);
    }
  }
}

TEST(PaperDataTest, HeadlineContrastsHold) {
  // The paper's headline: G4 stack crashes are dominated by the explicit
  // Stack Overflow category, which the P4 lacks entirely.
  const auto g4 =
      paper_campaign_crash_causes(isa::Arch::kRiscf, CampaignKind::kStack);
  bool has_so = false;
  for (const auto& [name, pct] : g4) {
    if (name == "Stack Overflow") {
      has_so = true;
      EXPECT_GT(pct, 40.0);
    }
  }
  EXPECT_TRUE(has_so);
  for (const auto& [name, pct] :
       paper_campaign_crash_causes(isa::Arch::kCisca, CampaignKind::kStack)) {
    EXPECT_NE(name, "Stack Overflow");
  }
}

TEST(ReportTest, FailureTableRendersMeasuredAndPaper) {
  std::vector<InjectionRecord> records;
  records.push_back(record(OutcomeCategory::kNotActivated, false));
  records.push_back(record(OutcomeCategory::kKnownCrash, true));
  const OutcomeTally t = tally_records(records);
  const std::string out = render_failure_table(
      isa::Arch::kCisca, {{CampaignKind::kStack, t}});
  EXPECT_NE(out.find("stack"), std::string::npos);
  EXPECT_NE(out.find("10143"), std::string::npos);  // paper injected count
  EXPECT_NE(out.find("|"), std::string::npos);
}

TEST(ReportTest, CauseComparisonListsPaperOrderAndExtras) {
  std::vector<InjectionRecord> records;
  records.push_back(record(OutcomeCategory::kKnownCrash, true,
                           kernel::CrashCause::kBadArea));
  records.push_back(record(OutcomeCategory::kKnownCrash, true,
                           kernel::CrashCause::kKernelPanic));
  const OutcomeTally t = tally_records(records);
  const std::string out = render_cause_comparison(
      isa::Arch::kRiscf, "Figure 12",
      t, paper_campaign_crash_causes(isa::Arch::kRiscf, CampaignKind::kData));
  EXPECT_NE(out.find("Bad Area"), std::string::npos);
  EXPECT_NE(out.find("Kernel Panic"), std::string::npos);  // measured-only row
  EXPECT_NE(out.find("89.1%"), std::string::npos);
}

TEST(ReportTest, LatencyComparisonRendersAllBuckets) {
  const OutcomeTally t;
  const std::string out = render_latency_comparison(
      "Figure 16(A)", CampaignKind::kStack, t, t);
  for (const auto& label : latency_bucket_labels()) {
    EXPECT_NE(out.find(label), std::string::npos) << label;
  }
}

}  // namespace
}  // namespace kfi::analysis
