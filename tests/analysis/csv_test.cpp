#include "analysis/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace kfi::analysis {
namespace {

using inject::CampaignKind;
using inject::InjectionRecord;
using inject::OutcomeCategory;

std::vector<InjectionRecord> sample_records() {
  std::vector<InjectionRecord> records(3);
  records[0].target = inject::InjectionTarget::code(0, 0xC0100200, 1, 5,
                                                    "schedule");
  records[0].outcome = OutcomeCategory::kKnownCrash;
  records[0].activated = true;
  records[0].crashed = true;
  records[0].crash.cause = kernel::CrashCause::kBadPaging;
  records[0].crash.pc = 0xC0100234;
  records[0].crash.addr = 0x170FC2A5;
  records[0].cycles_to_crash = 13116444;
  records[1].target = inject::InjectionTarget::sysreg(0, 0);
  records[1].target.reg_name = "ESP";
  records[1].outcome = OutcomeCategory::kNotManifested;
  records[1].activation_known = false;
  records[2].target = inject::InjectionTarget::stack(2, 0.75, 0);
  records[2].outcome = OutcomeCategory::kNotActivated;
  return records;
}

TEST(CsvTest, RecordsCsvHasHeaderAndRows) {
  std::ostringstream os;
  write_records_csv(os, sample_records());
  const std::string out = os.str();
  EXPECT_NE(out.find("index,kind,target,bit,outcome"), std::string::npos);
  EXPECT_NE(out.find("schedule+0xc0100200"), std::string::npos);
  EXPECT_NE(out.find("Bad Paging,0xc0100234,0x170fc2a5,13116444"),
            std::string::npos);
  EXPECT_NE(out.find("ESP"), std::string::npos);
  EXPECT_NE(out.find("task2@0.75"), std::string::npos);
  // 1 header + 3 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(CsvTest, TallyCsvSummarizesOutcomes) {
  const OutcomeTally tally = tally_records(sample_records());
  std::ostringstream os;
  write_tally_csv(os, tally);
  const std::string out = os.str();
  EXPECT_NE(out.find("injected,3"), std::string::npos);
  EXPECT_NE(out.find("activated,NA"), std::string::npos);  // register present
  EXPECT_NE(out.find("Known Crash,1"), std::string::npos);
  EXPECT_NE(out.find("cause: Bad Paging,1"), std::string::npos);
}

TEST(CsvTest, LatencyCsvHasAllBuckets) {
  const OutcomeTally tally = tally_records(sample_records());
  std::ostringstream os;
  write_latency_csv(os, tally);
  const std::string out = os.str();
  EXPECT_NE(out.find("<=3k,0,"), std::string::npos);
  // 13116444 cycles lands in the <=100M bucket.
  EXPECT_NE(out.find("<=100M,1,"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 9);  // header + 8
}

}  // namespace
}  // namespace kfi::analysis
