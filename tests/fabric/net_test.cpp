// Fabric network transport: the shared write/read helpers must survive
// EINTR, short writes, and arbitrary TCP segmentation; the KFNM message
// codecs must round-trip and refuse malformed bodies; and the KFFR
// FrameReader must decode correctly through a REAL socket under
// adversarial chunking — 1-byte trickle, random tearing, and a
// connection dropped mid-frame.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <thread>

#include "common/rng.hpp"
#include "fabric/net.hpp"
#include "fabric/wire.hpp"

namespace kfi::fabric {
namespace {

struct SocketPair {
  int a = -1, b = -1;
  SocketPair() {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    if (a >= 0) ::close(a);
    if (b >= 0) ::close(b);
  }
  void close_a() {
    ::close(a);
    a = -1;
  }
};

StatusFrame sample_frame(u32 done) {
  StatusFrame f;
  f.type = FrameType::kProgress;
  f.plan_fingerprint = 0xAB480E702F164E0Eull;
  f.shard = 1;
  f.pid = 777;
  f.done = done;
  f.total = 64;
  f.outcomes = {done, 0, 1, 2, 3, 4};
  return f;
}

TEST(WriteReadAll, RoundTripsThroughSocket) {
  SocketPair sp;
  const std::string text = "the quick brown fox";
  ASSERT_TRUE(write_all(sp.a, text.data(), text.size()));
  std::string back(text.size(), '\0');
  ASSERT_TRUE(read_exact(sp.b, back.data(), back.size()));
  EXPECT_EQ(back, text);
}

TEST(WriteReadAll, ReadExactFailsOnEofMidRead) {
  SocketPair sp;
  ASSERT_TRUE(write_all(sp.a, "abc", 3));
  sp.close_a();
  char buf[8];
  EXPECT_FALSE(read_exact(sp.b, buf, sizeof(buf)));  // only 3 of 8 arrive
}

TEST(WriteReadAll, SendAllSurvivesPeerGoneWithoutSignal) {
  SocketPair sp;
  sp.close_a();
  // Both writes fill the dead socket: send_all must return false (EPIPE)
  // rather than raise SIGPIPE and kill the test binary.
  const std::vector<u8> junk(4096, 0x55);
  bool ok = true;
  for (int i = 0; i < 64 && ok; ++i) {
    ok = send_all(sp.b, junk.data(), junk.size());
  }
  EXPECT_FALSE(ok);
}

TEST(WriteReadAll, WriteAllSurvivesShortWrites) {
  // A tiny socket buffer forces the kernel to accept the payload in many
  // short writes; a concurrent reader drains it.
  SocketPair sp;
  const int small = 4096;
  ::setsockopt(sp.a, SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  const std::vector<u8> payload(1 << 20, 0xA5);
  std::thread writer(
      [&]() { EXPECT_TRUE(write_all(sp.a, payload.data(), payload.size())); });
  std::vector<u8> back(payload.size());
  EXPECT_TRUE(read_exact(sp.b, back.data(), back.size()));
  writer.join();
  EXPECT_EQ(back, payload);
}

TEST(FrameReaderOverSocket, OneByteChunks) {
  // The satellite case: KFFR frames through a real socket, delivered to
  // the reader one byte at a time.
  SocketPair sp;
  std::vector<u8> stream;
  for (u32 i = 0; i < 5; ++i) {
    const auto bytes = encode_frame(sample_frame(i));
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  ASSERT_TRUE(write_all(sp.a, stream.data(), stream.size()));
  sp.close_a();

  FrameReader reader;
  u32 decoded = 0;
  u8 byte;
  while (::read(sp.b, &byte, 1) == 1) {
    reader.feed(&byte, 1);
    while (const auto f = reader.next()) {
      EXPECT_EQ(f->done, decoded);
      EXPECT_EQ(f->outcomes[0], decoded);
      ++decoded;
    }
  }
  EXPECT_EQ(decoded, 5u);
  EXPECT_FALSE(reader.corrupted());
}

TEST(FrameReaderOverSocket, RandomlyTornChunks) {
  // Deterministically random tearing: every chunk boundary the kernel
  // could pick must decode to the same frame sequence.
  SocketPair sp;
  std::vector<u8> stream;
  for (u32 i = 0; i < 32; ++i) {
    const auto bytes = encode_frame(sample_frame(i));
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }

  Rng rng(0xC0FFEE);
  std::thread writer([&]() {
    size_t off = 0;
    while (off < stream.size()) {
      const size_t chunk = std::min<size_t>(
          1 + (rng.next_u64() % 97), stream.size() - off);
      ASSERT_TRUE(write_all(sp.a, stream.data() + off, chunk));
      off += chunk;
    }
    sp.close_a();
  });

  FrameReader reader;
  u32 decoded = 0;
  u8 buf[64];
  ssize_t n;
  while ((n = ::read(sp.b, buf, sizeof(buf))) > 0) {
    reader.feed(buf, static_cast<size_t>(n));
    while (const auto f = reader.next()) {
      EXPECT_EQ(f->done, decoded);
      ++decoded;
    }
  }
  writer.join();
  EXPECT_EQ(decoded, 32u);
  EXPECT_FALSE(reader.corrupted());
}

TEST(FrameReaderOverSocket, ConnectionDroppedMidFrame) {
  // A peer killed mid-write leaves a torn final frame: everything before
  // it decodes, the tail is simply never completed, and the reader is
  // NOT corrupted (the death is detected by EOF, not by the stream).
  SocketPair sp;
  const auto whole = encode_frame(sample_frame(0));
  const auto torn = encode_frame(sample_frame(1));
  ASSERT_TRUE(write_all(sp.a, whole.data(), whole.size()));
  ASSERT_TRUE(write_all(sp.a, torn.data(), torn.size() / 2));
  sp.close_a();  // connection drops mid-frame

  FrameReader reader;
  u32 decoded = 0;
  u8 buf[4096];
  ssize_t n;
  while ((n = ::read(sp.b, buf, sizeof(buf))) > 0) {
    reader.feed(buf, static_cast<size_t>(n));
    while (const auto f = reader.next()) {
      EXPECT_EQ(f->done, 0u);
      ++decoded;
    }
  }
  EXPECT_EQ(n, 0);  // clean EOF
  EXPECT_EQ(decoded, 1u);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.corrupted());
}

TEST(MsgReader, RoundTripsAllTypesThroughSocketpair) {
  SocketPair sp;
  SubmitRequest req;
  req.expect_plan_fp = 0x1DBE290A02436345ull;
  req.shard = 2;
  req.shards = 4;
  req.fresh = true;
  req.jobs = 3;
  req.retries = 2;
  req.heartbeat_seconds = 0.25;
  req.stall_seconds = 7.5;
  req.flush = 1;
  req.indices = "0-5,9";
  req.spec = {1, 2, 3, 4, 5};
  ASSERT_TRUE(send_message(
      sp.a, NetMessage{MsgType::kSubmit, encode_submit(req)}));
  ASSERT_TRUE(send_message(
      sp.a, NetMessage{MsgType::kJournal, std::vector<u8>{9, 9, 9}}));

  MsgReader reader;
  u8 buf[4096];
  std::optional<NetMessage> submit, journal;
  while (!journal) {
    const ssize_t n = ::read(sp.b, buf, sizeof(buf));
    ASSERT_GT(n, 0);
    reader.feed(buf, static_cast<size_t>(n));
    while (auto msg = reader.next()) {
      if (!submit) {
        submit = std::move(msg);
      } else {
        journal = std::move(msg);
      }
    }
  }
  ASSERT_EQ(submit->type, MsgType::kSubmit);
  const auto back = decode_submit(submit->body);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->expect_plan_fp, req.expect_plan_fp);
  EXPECT_EQ(back->shard, req.shard);
  EXPECT_EQ(back->shards, req.shards);
  EXPECT_EQ(back->fresh, req.fresh);
  EXPECT_EQ(back->jobs, req.jobs);
  EXPECT_EQ(back->retries, req.retries);
  EXPECT_EQ(back->heartbeat_seconds, req.heartbeat_seconds);
  EXPECT_EQ(back->stall_seconds, req.stall_seconds);
  EXPECT_EQ(back->flush, req.flush);
  EXPECT_EQ(back->indices, req.indices);
  EXPECT_EQ(back->spec, req.spec);
  ASSERT_EQ(journal->type, MsgType::kJournal);
  EXPECT_EQ(journal->body, (std::vector<u8>{9, 9, 9}));
  EXPECT_FALSE(reader.corrupted());
}

TEST(MsgReader, FlagsCorruptionAndBadTypes) {
  {
    MsgReader reader;
    const u8 garbage[] = {'n', 'o', 'p', 'e', 0, 0, 0, 1, 0};
    reader.feed(garbage, sizeof(garbage));
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_TRUE(reader.corrupted());
  }
  {
    auto bytes = encode_message(NetMessage{MsgType::kAccept, {1, 2, 3}});
    bytes.back() ^= 1;  // break the checksum
    MsgReader reader;
    reader.feed(bytes.data(), bytes.size());
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_TRUE(reader.corrupted());
  }
  {
    NetMessage msg{MsgType::kSubmit, {}};
    auto bytes = encode_message(msg);
    bytes[8] = 0x77;  // unknown type byte (payload starts at offset 8)...
    // ...which also breaks the checksum; rebuild it properly instead:
    // craft a message with a type outside the enum by hand.
    MsgReader reader;
    reader.feed(bytes.data(), bytes.size());
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_TRUE(reader.corrupted());
  }
}

TEST(MsgCodecs, AcceptAndRefusalRoundTrip) {
  AcceptInfo info;
  info.plan_fingerprint = 0xAB480E702F164E0Eull;
  info.resumed = 7;
  info.pid = 31337;
  const auto a = decode_accept(encode_accept(info));
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->plan_fingerprint, info.plan_fingerprint);
  EXPECT_EQ(a->resumed, info.resumed);
  EXPECT_EQ(a->pid, info.pid);

  Refusal r;
  r.code = RefuseCode::kSkew;
  r.reason = "plan fingerprint skew";
  const auto b = decode_refusal(encode_refusal(r));
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->code, r.code);
  EXPECT_EQ(b->reason, r.reason);
}

TEST(MsgCodecs, TruncationAndTrailingBytesRejected) {
  SubmitRequest req;
  req.indices = "0-3";
  req.spec = {1, 2, 3};
  const auto body = encode_submit(req);
  for (size_t len = 0; len < body.size(); ++len) {
    const std::vector<u8> cut(body.begin(),
                              body.begin() + static_cast<long>(len));
    EXPECT_FALSE(decode_submit(cut).has_value()) << "prefix " << len;
  }
  auto padded = body;
  padded.push_back(0);
  EXPECT_FALSE(decode_submit(padded).has_value());

  auto accept = encode_accept(AcceptInfo{});
  accept.pop_back();
  EXPECT_FALSE(decode_accept(accept).has_value());
  auto refusal = encode_refusal(Refusal{RefuseCode::kBusy, "x"});
  refusal.push_back(0);
  EXPECT_FALSE(decode_refusal(refusal).has_value());
  EXPECT_FALSE(decode_refusal({0xFF, 0, 0, 0, 0}).has_value());  // bad code
}

TEST(HostList, ParsesAndRejects) {
  const auto one = parse_host_list("127.0.0.1:4711");
  ASSERT_TRUE(one.has_value());
  ASSERT_EQ(one->size(), 1u);
  EXPECT_EQ((*one)[0].host, "127.0.0.1");
  EXPECT_EQ((*one)[0].port, 4711);
  EXPECT_EQ((*one)[0].label(), "127.0.0.1:4711");

  const auto two = parse_host_list("alpha:1,beta:65535");
  ASSERT_TRUE(two.has_value());
  ASSERT_EQ(two->size(), 2u);
  EXPECT_EQ((*two)[1].host, "beta");
  EXPECT_EQ((*two)[1].port, 65535);

  EXPECT_FALSE(parse_host_list("").has_value());
  EXPECT_FALSE(parse_host_list("noport").has_value());
  EXPECT_FALSE(parse_host_list(":4711").has_value());
  EXPECT_FALSE(parse_host_list("host:").has_value());
  EXPECT_FALSE(parse_host_list("host:0").has_value());
  EXPECT_FALSE(parse_host_list("host:65536").has_value());
  EXPECT_FALSE(parse_host_list("host:4711,").has_value());
  EXPECT_FALSE(parse_host_list("host:47x1").has_value());
}

TEST(TcpHelpers, ListenConnectRoundTrip) {
  std::string err;
  const int listen_fd = tcp_listen("127.0.0.1", 0, &err);
  ASSERT_GE(listen_fd, 0) << err;
  const u16 port = local_port(listen_fd);
  ASSERT_GT(port, 0);

  const int client = tcp_connect("127.0.0.1", port, 5.0, &err);
  ASSERT_GE(client, 0) << err;
  const int server = ::accept(listen_fd, nullptr, nullptr);
  ASSERT_GE(server, 0);

  ASSERT_TRUE(send_message(client, NetMessage{MsgType::kStatus, {42}}));
  MsgReader reader;
  u8 buf[256];
  std::optional<NetMessage> msg;
  while (!msg) {
    const ssize_t n = ::read(server, buf, sizeof(buf));
    ASSERT_GT(n, 0);
    reader.feed(buf, static_cast<size_t>(n));
    msg = reader.next();
  }
  EXPECT_EQ(msg->type, MsgType::kStatus);
  EXPECT_EQ(msg->body, std::vector<u8>{42});

  ::close(client);
  ::close(server);
  ::close(listen_fd);
}

TEST(TcpHelpers, ConnectToClosedPortFails) {
  // Bind-then-close yields a port with (very likely) no listener.
  std::string err;
  const int fd = tcp_listen("127.0.0.1", 0, &err);
  ASSERT_GE(fd, 0);
  const u16 port = local_port(fd);
  ::close(fd);
  const int client = tcp_connect("127.0.0.1", port, 1.0, &err);
  EXPECT_LT(client, 0);
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace kfi::fabric
