// Shard math invariants: the fabric's crash recovery rests on shard
// boundaries being pure functions of (total, shards), and on index sets
// surviving the trip through a worker's command line unchanged.
#include <gtest/gtest.h>

#include "fabric/shard.hpp"

namespace kfi::fabric {
namespace {

TEST(ShardIndices, PartitionsTheIndexSpaceExactly) {
  for (const u32 total : {0u, 1u, 5u, 16u, 97u}) {
    for (const u32 shards : {1u, 2u, 3u, 7u, 16u}) {
      const auto slices = shard_indices(total, shards);
      ASSERT_EQ(slices.size(), shards);
      u32 next = 0;
      for (const auto& slice : slices) {
        for (const u32 i : slice) EXPECT_EQ(i, next++);
      }
      EXPECT_EQ(next, total) << total << " over " << shards;
    }
  }
}

TEST(ShardIndices, SlicesAreNearEqual) {
  const auto slices = shard_indices(17, 5);
  // 17 over 5: the first two slices carry the remainder.
  EXPECT_EQ(slices[0].size(), 4u);
  EXPECT_EQ(slices[1].size(), 4u);
  EXPECT_EQ(slices[2].size(), 3u);
  EXPECT_EQ(slices[3].size(), 3u);
  EXPECT_EQ(slices[4].size(), 3u);
}

TEST(ShardIndices, MoreShardsThanIndicesLeavesEmptyTails) {
  const auto slices = shard_indices(2, 4);
  EXPECT_EQ(slices[0].size(), 1u);
  EXPECT_EQ(slices[1].size(), 1u);
  EXPECT_TRUE(slices[2].empty());
  EXPECT_TRUE(slices[3].empty());
}

TEST(ShardIndices, ZeroShardsBehavesAsOne) {
  const auto slices = shard_indices(5, 0);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0].size(), 5u);
}

TEST(ShardJournalPath, StableCanonicalName) {
  EXPECT_EQ(shard_journal_path("/tmp/run", 2, 8),
            "/tmp/run.shard2of8.kfij");
}

TEST(IndexRanges, FormatCompactsRuns) {
  EXPECT_EQ(format_index_ranges({}), "");
  EXPECT_EQ(format_index_ranges({7}), "7");
  EXPECT_EQ(format_index_ranges({0, 1, 2, 3}), "0-3");
  EXPECT_EQ(format_index_ranges({0, 1, 2, 5, 9, 10}), "0-2,5,9-10");
}

TEST(IndexRanges, ParseRoundTripsFormat) {
  const std::vector<std::vector<u32>> cases = {
      {}, {0}, {3, 4, 5}, {0, 2, 4, 6}, {1, 2, 3, 10, 11, 40}};
  for (const auto& indices : cases) {
    const auto back = parse_index_ranges(format_index_ranges(indices));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, indices);
  }
}

TEST(IndexRanges, ParseRejectsMalformedText) {
  for (const char* bad : {"3-1", "1,1", "2,1", "a", "1,", ",1", "1--2",
                          "1-", "-2", "1, 2", "4294967296"}) {
    EXPECT_FALSE(parse_index_ranges(bad).has_value()) << bad;
  }
}

}  // namespace
}  // namespace kfi::fabric
