// Fabric wire protocol: the spec blob must carry every
// determinism-relevant campaign input bit-exactly (a worker rebuilds the
// plan from it), and status frames must survive arbitrary pipe
// fragmentation while refusing corruption loudly.
#include <gtest/gtest.h>

#include "fabric/wire.hpp"

namespace kfi::fabric {
namespace {

inject::CampaignSpec full_spec() {
  inject::CampaignSpec spec;
  spec.arch = isa::Arch::kRiscf;
  spec.kind = inject::CampaignKind::kCode;
  spec.injections = 123;
  spec.seed = 0xDEADBEEFCAFEull;
  spec.workload_scale = 3;
  spec.channel_loss = 0.0625;
  spec.budget_factor = 2.5;
  spec.machine.timer_period = 5000;
  spec.machine.user_cycles_mean = 777;
  spec.machine.g4_stack_wrapper = false;
  spec.machine.p4_stack_limit_check = true;
  spec.machine.spinlock_debug = false;
  spec.machine.seed = 99;
  spec.machine.decode_cache = false;
  spec.machine.fast_reboot = false;
  spec.machine.superblock = true;
  spec.machine.cow_memory = false;
  spec.model.shape = inject::FaultShape::kOpclass;
  spec.model.trigger = inject::FaultTrigger::kRate;
  spec.model.bits = 2;
  spec.model.burst_span = 4;
  spec.model.rate = 1.5;
  spec.model.opclass = isa::OpClass::kBranch;
  return spec;
}

TEST(SpecBlob, RoundTripPreservesEveryField) {
  const inject::CampaignSpec spec = full_spec();
  const auto back = deserialize_campaign_spec(serialize_campaign_spec(spec));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->arch, spec.arch);
  EXPECT_EQ(back->kind, spec.kind);
  EXPECT_EQ(back->injections, spec.injections);
  EXPECT_EQ(back->seed, spec.seed);
  EXPECT_EQ(back->workload_scale, spec.workload_scale);
  EXPECT_EQ(back->channel_loss, spec.channel_loss);
  EXPECT_EQ(back->budget_factor, spec.budget_factor);
  EXPECT_EQ(back->machine.timer_period, spec.machine.timer_period);
  EXPECT_EQ(back->machine.user_cycles_mean, spec.machine.user_cycles_mean);
  EXPECT_EQ(back->machine.g4_stack_wrapper, spec.machine.g4_stack_wrapper);
  EXPECT_EQ(back->machine.p4_stack_limit_check,
            spec.machine.p4_stack_limit_check);
  EXPECT_EQ(back->machine.spinlock_debug, spec.machine.spinlock_debug);
  EXPECT_EQ(back->machine.seed, spec.machine.seed);
  EXPECT_EQ(back->machine.decode_cache, spec.machine.decode_cache);
  EXPECT_EQ(back->machine.fast_reboot, spec.machine.fast_reboot);
  EXPECT_EQ(back->machine.superblock, spec.machine.superblock);
  EXPECT_EQ(back->machine.cow_memory, spec.machine.cow_memory);
  EXPECT_EQ(back->model.shape, spec.model.shape);
  EXPECT_EQ(back->model.trigger, spec.model.trigger);
  EXPECT_EQ(back->model.bits, spec.model.bits);
  EXPECT_EQ(back->model.burst_span, spec.model.burst_span);
  EXPECT_EQ(back->model.rate, spec.model.rate);
  EXPECT_EQ(back->model.opclass, spec.model.opclass);
}

TEST(SpecBlob, ErrnoModelRoundTrips) {
  inject::CampaignSpec spec;
  spec.kind = inject::CampaignKind::kErrno;
  spec.errno_model.syscalls = 0b101;
  spec.errno_model.value = errnoinj::ErrnoValue::kDrawnNegative;
  spec.errno_model.trigger = errnoinj::ErrnoTrigger::kRate;
  spec.errno_model.nth = 9;
  spec.errno_model.rate = 0.75;
  const auto back = deserialize_campaign_spec(serialize_campaign_spec(spec));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->errno_model.syscalls, spec.errno_model.syscalls);
  EXPECT_EQ(back->errno_model.value, spec.errno_model.value);
  EXPECT_EQ(back->errno_model.trigger, spec.errno_model.trigger);
  EXPECT_EQ(back->errno_model.nth, spec.errno_model.nth);
  EXPECT_EQ(back->errno_model.rate, spec.errno_model.rate);
}

TEST(SpecBlob, EveryTruncationAndTrailingByteRejected) {
  const std::vector<u8> blob = serialize_campaign_spec(full_spec());
  for (size_t len = 0; len < blob.size(); ++len) {
    const std::vector<u8> cut(blob.begin(),
                              blob.begin() + static_cast<long>(len));
    EXPECT_FALSE(deserialize_campaign_spec(cut).has_value())
        << "prefix " << len;
  }
  std::vector<u8> padded = blob;
  padded.push_back(0);
  EXPECT_FALSE(deserialize_campaign_spec(padded).has_value());
}

TEST(SpecBlob, CorruptEnumsRejected) {
  std::vector<u8> blob = serialize_campaign_spec(full_spec());
  blob[1] = 0xFF;  // arch
  EXPECT_FALSE(deserialize_campaign_spec(blob).has_value());
  blob = serialize_campaign_spec(full_spec());
  blob[2] = 0xFF;  // campaign kind
  EXPECT_FALSE(deserialize_campaign_spec(blob).has_value());
}

TEST(Hex, RoundTripAndRejection) {
  const std::vector<u8> bytes = {0x00, 0xAB, 0xFF, 0x10};
  EXPECT_EQ(to_hex(bytes), "00abff10");
  EXPECT_EQ(from_hex("00abff10"), bytes);
  EXPECT_EQ(from_hex("00ABFF10"), bytes);  // case-insensitive
  EXPECT_FALSE(from_hex("abc").has_value());   // odd length
  EXPECT_FALSE(from_hex("zz").has_value());    // bad digit
  EXPECT_EQ(from_hex(""), std::vector<u8>{});  // empty is legal
}

StatusFrame full_frame() {
  StatusFrame f;
  f.type = FrameType::kDone;
  f.plan_fingerprint = 0xAB480E702F164E0Eull;
  f.shard = 3;
  f.pid = 4242;
  f.done = 15;
  f.total = 16;
  f.outcomes = {4, 3, 1, 5, 2, 1};  // one count per OutcomeCategory
  f.executed = 12;
  f.quarantined = 1;
  f.stalls = 2;
  f.harness_retries = 3;
  f.backoff_waits = 4;
  f.backoff_seconds = 0.125;
  f.message = "shard complete";
  return f;
}

void expect_frames_equal(const StatusFrame& a, const StatusFrame& b) {
  EXPECT_EQ(a.type, b.type);
  EXPECT_EQ(a.plan_fingerprint, b.plan_fingerprint);
  EXPECT_EQ(a.shard, b.shard);
  EXPECT_EQ(a.pid, b.pid);
  EXPECT_EQ(a.done, b.done);
  EXPECT_EQ(a.total, b.total);
  EXPECT_EQ(a.outcomes, b.outcomes);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.quarantined, b.quarantined);
  EXPECT_EQ(a.stalls, b.stalls);
  EXPECT_EQ(a.harness_retries, b.harness_retries);
  EXPECT_EQ(a.backoff_waits, b.backoff_waits);
  EXPECT_EQ(a.backoff_seconds, b.backoff_seconds);
  EXPECT_EQ(a.message, b.message);
}

TEST(FrameReader, DecodesWholeFrames) {
  const StatusFrame frame = full_frame();
  const std::vector<u8> bytes = encode_frame(frame);
  FrameReader reader;
  reader.feed(bytes.data(), bytes.size());
  const auto back = reader.next();
  ASSERT_TRUE(back.has_value());
  expect_frames_equal(frame, *back);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.corrupted());
}

TEST(FrameReader, SurvivesByteAtATimeFragmentation) {
  // A pipe may deliver a frame in any fragmentation; feed the worst case.
  std::vector<u8> stream;
  for (int i = 0; i < 3; ++i) {
    StatusFrame f = full_frame();
    f.done = static_cast<u32>(i);
    const auto bytes = encode_frame(f);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  FrameReader reader;
  u32 decoded = 0;
  for (const u8 byte : stream) {
    reader.feed(&byte, 1);
    while (const auto f = reader.next()) {
      EXPECT_EQ(f->done, decoded);
      ++decoded;
    }
  }
  EXPECT_EQ(decoded, 3u);
  EXPECT_FALSE(reader.corrupted());
}

TEST(FrameReader, FlagsCorruptMagicAndChecksum) {
  {
    FrameReader reader;
    const u8 garbage[] = {'n', 'o', 'p', 'e', 0, 0, 0, 0};
    reader.feed(garbage, sizeof(garbage));
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_TRUE(reader.corrupted());
  }
  {
    std::vector<u8> bytes = encode_frame(full_frame());
    bytes.back() ^= 1;  // break the checksum
    FrameReader reader;
    reader.feed(bytes.data(), bytes.size());
    EXPECT_FALSE(reader.next().has_value());
    EXPECT_TRUE(reader.corrupted());
  }
}

}  // namespace
}  // namespace kfi::fabric
