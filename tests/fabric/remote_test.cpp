// Multi-host chaos tests: real kfi_campaignd daemon processes on
// loopback TCP, real SIGKILL.
//
// The remote fabric's claim mirrors the single-host fabric's: daemon
// loss is invisible in the result.  Every injection is journaled on the
// daemon before the next begins, deaths revoke the session and
// re-dispatch the shard (to the same daemon with fresh=false, or to a
// survivor from scratch — splice dedups either way), and the spliced
// result's fingerprint is bit-identical to the serial run.  These tests
// spawn the freshly built daemon (KFI_CAMPAIGND_BIN), pin the same
// legacy fingerprints the CI jobs pin:
//
//   cisca(P4) data n=16 seed=77  -> ab480e702f164e0e
//   riscf(G4) data n=16 seed=77  -> 1dbe290a02436345
//
// and kill -9 a daemon mid-shard, asserting the recovered fingerprint
// still equals the in-process serial run's.
//
// The raw-socket tests drive the KFNM session protocol by hand to pin
// the refusal semantics (skew refused with a typed code before any
// injection) and the daemon-side resume path (second submit with
// fresh=false reports every journaled index as resumed).
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>

#include "fabric/net.hpp"
#include "fabric/remote.hpp"
#include "fabric/shard.hpp"
#include "fabric/wire.hpp"
#include "inject/campaign.hpp"
#include "inject/plan.hpp"

namespace kfi::fabric {
namespace {

using inject::CampaignKind;
using inject::CampaignPlan;
using inject::CampaignResult;
using inject::CampaignSpec;

constexpr u64 kPinnedCisca = 0xAB480E702F164E0Eull;
constexpr u64 kPinnedRiscf = 0x1DBE290A02436345ull;

CampaignSpec pinned_spec(isa::Arch arch, u32 n = 16) {
  CampaignSpec spec;
  spec.arch = arch;
  spec.kind = CampaignKind::kData;
  spec.injections = n;
  spec.seed = 77;
  return spec;
}

/// One kfi_campaignd process bound to an ephemeral loopback port, with
/// its own journal directory.  The port is read back via --port-file.
class Daemon {
 public:
  explicit Daemon(const std::string& tag) {
    dir_ = (std::filesystem::temp_directory_path() /
            ("kfi_campaignd_" + tag + "_" + std::to_string(::getpid())))
               .string();
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    const std::string port_file = dir_ + "/port";
    pid_ = ::fork();
    if (pid_ == 0) {
      ::execl(KFI_CAMPAIGND_BIN, KFI_CAMPAIGND_BIN, "--port", "0",
              "--port-file", port_file.c_str(), "--dir", dir_.c_str(),
              static_cast<char*>(nullptr));
      _exit(127);
    }
    // The daemon writes the port file after bind; poll for it.
    for (int i = 0; i < 500 && port_ == 0; ++i) {
      std::ifstream in(port_file);
      int p = 0;
      if (in >> p && p > 0) {
        port_ = static_cast<u16>(p);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }

  ~Daemon() {
    kill_now();
    std::filesystem::remove_all(dir_);
  }

  void kill_now() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, nullptr, 0);
      pid_ = -1;
    }
  }

  bool alive() const { return pid_ > 0; }
  pid_t pid() const { return pid_; }
  u16 port() const { return port_; }
  HostSpec host() const { return HostSpec{"127.0.0.1", port_}; }
  const std::string& dir() const { return dir_; }

 private:
  pid_t pid_ = -1;
  u16 port_ = 0;
  std::string dir_;
};

RemoteOptions base_options(const std::string& tag,
                           const std::vector<const Daemon*>& daemons) {
  RemoteOptions opt;
  for (const Daemon* d : daemons) opt.hosts.push_back(d->host());
  opt.journal_prefix =
      (std::filesystem::temp_directory_path() / ("kfi_remote_" + tag))
          .string();
  opt.lease_seconds = 60.0;  // generous: loaded CI must not false-trip
  opt.heartbeat_seconds = 0.1;
  opt.backoff_base = 0.01;  // fast restarts keep the test quick
  opt.backoff_cap = 0.05;
  return opt;
}

void remove_shards(const RemoteCoordinator& coordinator, u32 total) {
  for (const std::string& p : coordinator.journal_paths(total)) {
    std::filesystem::remove(p);
  }
}

class RemoteLoopbackTest : public ::testing::TestWithParam<isa::Arch> {};

TEST_P(RemoteLoopbackTest, TwoDaemonsReproduceThePinnedFingerprint) {
  const isa::Arch arch = GetParam();
  const CampaignPlan plan = build_campaign_plan(pinned_spec(arch));
  const u32 total = static_cast<u32>(plan.targets.size());

  Daemon d1(std::string("lp1_") + (arch == isa::Arch::kCisca ? "p4" : "g4"));
  Daemon d2(std::string("lp2_") + (arch == isa::Arch::kCisca ? "p4" : "g4"));
  ASSERT_GT(d1.port(), 0);
  ASSERT_GT(d2.port(), 0);

  RemoteOptions opt = base_options(
      std::string("loopback_") + (arch == isa::Arch::kCisca ? "p4" : "g4"),
      {&d1, &d2});
  u32 progress_calls = 0;
  opt.progress = [&](const std::vector<RemoteHostProgress>& hosts) {
    ++progress_calls;
    EXPECT_EQ(hosts.size(), 2u);
  };
  RemoteCoordinator coordinator(opt);
  remove_shards(coordinator, total);

  SpliceStats stats;
  const CampaignResult result = coordinator.run(plan, &stats);

  EXPECT_EQ(inject::result_fingerprint(result),
            arch == isa::Arch::kCisca ? kPinnedCisca : kPinnedRiscf);
  EXPECT_EQ(result.executed(), total);
  EXPECT_FALSE(result.interrupted);
  EXPECT_EQ(result.fabric_workers, 2u);
  EXPECT_EQ(result.fabric_worker_deaths, 0u);
  EXPECT_EQ(stats.missing, 0u);
  // The supervisor ledger names both endpoints and the live tally flowed.
  ASSERT_EQ(result.fabric_hosts.size(), 2u);
  EXPECT_EQ(result.fabric_hosts[0].host, d1.host().label());
  EXPECT_GE(result.fabric_hosts[0].dispatches, 1u);
  EXPECT_GT(progress_calls, 0u);
  remove_shards(coordinator, total);
}

INSTANTIATE_TEST_SUITE_P(BothArches, RemoteLoopbackTest,
                         ::testing::Values(isa::Arch::kCisca,
                                           isa::Arch::kRiscf),
                         [](const auto& info) {
                           return info.param == isa::Arch::kCisca
                                      ? std::string("cisca")
                                      : std::string("riscf");
                         });

TEST(RemoteChaos, Kill9MidShardRecoversBitIdentically) {
  // Serial ground truth first: the chaos run must splice to exactly this.
  const CampaignSpec spec = pinned_spec(isa::Arch::kCisca, 120);
  const u64 serial_fp =
      inject::result_fingerprint(inject::run_campaign(spec));

  const CampaignPlan plan = build_campaign_plan(spec);
  const u32 total = static_cast<u32>(plan.targets.size());

  Daemon d1("chaos1");
  Daemon d2("chaos2");
  ASSERT_GT(d1.port(), 0);
  ASSERT_GT(d2.port(), 0);

  RemoteOptions opt = base_options("chaos", {&d1, &d2});
  opt.max_restarts_per_host = 3;
  opt.min_workers = 1;  // degrade gracefully onto the survivor
  // kill -9 daemon 2 the moment its shard is genuinely mid-flight: some
  // records journaled, more to go.  The coordinator sees the TCP EOF,
  // revokes the session, and re-dispatches shard 1 — reconnects to the
  // corpse fail until the host retires, then the survivor picks it up.
  std::atomic<bool> killed{false};
  opt.progress = [&](const std::vector<RemoteHostProgress>& hosts) {
    if (killed.load()) return;
    for (const RemoteHostProgress& h : hosts) {
      if (h.shard == 1 && h.completed >= 3 && h.completed < h.total) {
        if (!killed.exchange(true)) d2.kill_now();
      }
    }
  };
  RemoteCoordinator coordinator(opt);
  remove_shards(coordinator, total);

  const CampaignResult result = coordinator.run(plan);

  EXPECT_TRUE(killed.load());  // the chaos actually happened
  EXPECT_EQ(inject::result_fingerprint(result), serial_fp);
  EXPECT_EQ(result.executed(), total);
  EXPECT_FALSE(result.interrupted);
  EXPECT_GE(result.fabric_worker_deaths, 1u);
  EXPECT_GE(result.fabric_redispatches, 1u);
  ASSERT_EQ(result.fabric_hosts.size(), 2u);
  EXPECT_GE(result.fabric_hosts[1].deaths, 1u);
  remove_shards(coordinator, total);
}

/// Drive one raw KFNM session by hand: send the submit, then pump
/// messages until `done` says stop.
class RawSession {
 public:
  explicit RawSession(const Daemon& daemon) {
    std::string err;
    fd_ = tcp_connect("127.0.0.1", daemon.port(), 5.0, &err);
    EXPECT_GE(fd_, 0) << err;
  }
  ~RawSession() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool submit(const SubmitRequest& req) {
    return send_message(fd_,
                        NetMessage{MsgType::kSubmit, encode_submit(req)});
  }

  /// Read messages until the predicate consumes a final one or the
  /// daemon closes the connection.
  void pump(const std::function<bool(const NetMessage&)>& done) {
    u8 buf[65536];
    while (true) {
      const ssize_t n = ::read(fd_, buf, sizeof(buf));
      if (n <= 0) return;  // EOF: daemon ended the session
      reader_.feed(buf, static_cast<size_t>(n));
      while (auto msg = reader_.next()) {
        if (done(*msg)) return;
      }
      ASSERT_FALSE(reader_.corrupted());
    }
  }

 private:
  int fd_ = -1;
  MsgReader reader_;
};

SubmitRequest full_submit(const CampaignPlan& plan) {
  SubmitRequest req;
  req.expect_plan_fp = inject::plan_fingerprint(plan);
  req.shard = 0;
  req.shards = 1;
  req.fresh = true;
  req.heartbeat_seconds = 0.1;
  std::vector<u32> all(plan.targets.size());
  for (u32 i = 0; i < all.size(); ++i) all[i] = i;
  req.indices = format_index_ranges(all);
  req.spec = serialize_campaign_spec(plan.spec);
  return req;
}

TEST(RemoteSkew, WrongPlanFingerprintRefusedTyped) {
  Daemon daemon("skew_fp");
  ASSERT_GT(daemon.port(), 0);
  const CampaignPlan plan = build_campaign_plan(pinned_spec(isa::Arch::kCisca));

  RawSession session(daemon);
  SubmitRequest req = full_submit(plan);
  req.expect_plan_fp = 0xDEAD0000DEAD0000ull;  // not what the daemon builds
  ASSERT_TRUE(session.submit(req));

  std::optional<Refusal> refusal;
  session.pump([&](const NetMessage& msg) {
    EXPECT_EQ(msg.type, MsgType::kRefuse);  // never kAccept, never kStatus
    refusal = decode_refusal(msg.body);
    return true;
  });
  ASSERT_TRUE(refusal.has_value());
  EXPECT_EQ(refusal->code, RefuseCode::kSkew);
  // The reason names both fingerprints so the skew is diagnosable.
  EXPECT_NE(refusal->reason.find("dead0000dead0000"), std::string::npos)
      << refusal->reason;
  // Refused before any injection: the daemon created no journal.
  size_t journals = 0;
  for (const auto& e : std::filesystem::directory_iterator(daemon.dir())) {
    if (e.path().extension() == ".kfij") ++journals;
  }
  EXPECT_EQ(journals, 0u);
}

TEST(RemoteSkew, ProtocolVersionMismatchRefusedTyped) {
  Daemon daemon("skew_proto");
  ASSERT_GT(daemon.port(), 0);
  const CampaignPlan plan = build_campaign_plan(pinned_spec(isa::Arch::kCisca));

  RawSession session(daemon);
  SubmitRequest req = full_submit(plan);
  req.protocol = kNetProtocolVersion + 1;
  ASSERT_TRUE(session.submit(req));

  std::optional<Refusal> refusal;
  session.pump([&](const NetMessage& msg) {
    EXPECT_EQ(msg.type, MsgType::kRefuse);
    refusal = decode_refusal(msg.body);
    return true;
  });
  ASSERT_TRUE(refusal.has_value());
  EXPECT_EQ(refusal->code, RefuseCode::kSkew);
}

TEST(RemoteSkew, MalformedSpecRefusedAsBadRequest) {
  Daemon daemon("skew_spec");
  ASSERT_GT(daemon.port(), 0);
  const CampaignPlan plan = build_campaign_plan(pinned_spec(isa::Arch::kCisca));

  RawSession session(daemon);
  SubmitRequest req = full_submit(plan);
  req.spec = {0xFF, 0xFF};  // not a spec blob
  ASSERT_TRUE(session.submit(req));

  std::optional<Refusal> refusal;
  session.pump([&](const NetMessage& msg) {
    refusal = decode_refusal(msg.body);
    return true;
  });
  ASSERT_TRUE(refusal.has_value());
  EXPECT_EQ(refusal->code, RefuseCode::kBadRequest);
}

TEST(RemoteResume, SecondSubmitResumesEveryJournaledIndex) {
  Daemon daemon("resume");
  ASSERT_GT(daemon.port(), 0);
  const CampaignPlan plan = build_campaign_plan(pinned_spec(isa::Arch::kCisca));
  const u32 total = static_cast<u32>(plan.targets.size());

  // Session 1: fresh run of the whole plan as one shard; keep the
  // retrieved journal bytes for the bit-identity check below.
  std::vector<u8> first_journal;
  {
    RawSession session(daemon);
    ASSERT_TRUE(session.submit(full_submit(plan)));
    bool accepted = false;
    session.pump([&](const NetMessage& msg) {
      if (msg.type == MsgType::kAccept) {
        const auto info = decode_accept(msg.body);
        EXPECT_TRUE(info.has_value());
        EXPECT_EQ(info->resumed, 0u);  // fresh: nothing recovered
        accepted = true;
        return false;
      }
      if (msg.type == MsgType::kJournal) {
        first_journal = msg.body;
        return true;
      }
      EXPECT_EQ(msg.type, MsgType::kStatus);
      return false;
    });
    EXPECT_TRUE(accepted);
    ASSERT_FALSE(first_journal.empty());
  }

  // Session 2: same shard, fresh=false — exactly what a coordinator
  // re-dispatch after a lease revocation sends.  The daemon must resume
  // its local journal (all indices recovered), execute nothing new, and
  // stream back byte-identical journal contents.
  {
    RawSession session(daemon);
    SubmitRequest req = full_submit(plan);
    req.fresh = false;
    ASSERT_TRUE(session.submit(req));
    u32 resumed = 0;
    std::vector<u8> second_journal;
    session.pump([&](const NetMessage& msg) {
      if (msg.type == MsgType::kAccept) {
        const auto info = decode_accept(msg.body);
        EXPECT_TRUE(info.has_value());
        resumed = info->resumed;
        return false;
      }
      if (msg.type == MsgType::kJournal) {
        second_journal = msg.body;
        return true;
      }
      return false;
    });
    EXPECT_EQ(resumed, total);
    EXPECT_EQ(second_journal, first_journal);
  }
}

}  // namespace
}  // namespace kfi::fabric
