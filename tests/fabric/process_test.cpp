// Multi-process chaos tests: real kfi_worker subprocesses, real SIGKILL.
//
// The fabric's whole claim is that worker loss is invisible in the
// result: every shard journal is fsync'd record-by-record, deaths are
// re-dispatched with dedup-by-index, and the spliced result's
// fingerprint is byte-identical to the single-process run.  These tests
// kill -9 workers mid-campaign (via the deterministic chaos knob — the
// worker raises SIGKILL on itself, indistinguishable from an external
// kill) and assert the pinned legacy fingerprints the CI jobs also pin:
//
//   cisca(P4) data n=16 seed=77  -> ab480e702f164e0e
//   riscf(G4) data n=16 seed=77  -> 1dbe290a02436345
//
// KFI_WORKER_BIN is injected by the build so the coordinator spawns the
// freshly built worker, not whatever is on PATH.
#include <gtest/gtest.h>

#include <filesystem>

#include "fabric/coordinator.hpp"
#include "inject/campaign.hpp"
#include "inject/plan.hpp"

namespace kfi::fabric {
namespace {

using inject::CampaignKind;
using inject::CampaignPlan;
using inject::CampaignResult;
using inject::CampaignSpec;

constexpr u64 kPinnedCisca = 0xAB480E702F164E0Eull;
constexpr u64 kPinnedRiscf = 0x1DBE290A02436345ull;

CampaignSpec pinned_spec(isa::Arch arch) {
  CampaignSpec spec;
  spec.arch = arch;
  spec.kind = CampaignKind::kData;
  spec.injections = 16;
  spec.seed = 77;
  return spec;
}

FabricOptions base_options(const std::string& tag) {
  FabricOptions opt;
  opt.workers = 3;
  opt.journal_prefix =
      (std::filesystem::temp_directory_path() / ("kfi_fabric_" + tag))
          .string();
  opt.worker_binary = KFI_WORKER_BIN;
  opt.lease_seconds = 60.0;  // generous: loaded CI must not false-trip
  opt.backoff_base = 0.01;   // fast restarts keep the test quick
  opt.backoff_cap = 0.05;
  return opt;
}

void remove_shards(const FabricCoordinator& coordinator, u32 total) {
  for (const std::string& p : coordinator.journal_paths(total)) {
    std::filesystem::remove(p);
  }
}

class FabricChaosTest : public ::testing::TestWithParam<isa::Arch> {};

TEST_P(FabricChaosTest, WorkerKillsLeaveThePinnedFingerprint) {
  const isa::Arch arch = GetParam();
  const CampaignPlan plan = build_campaign_plan(pinned_spec(arch));
  const u32 total = static_cast<u32>(plan.targets.size());

  FabricOptions opt = base_options(
      std::string("chaos_") + (arch == isa::Arch::kCisca ? "p4" : "g4"));
  opt.chaos_kill_after = 2;  // every first-launch worker dies mid-shard
  FabricCoordinator coordinator(opt);
  remove_shards(coordinator, total);

  SpliceStats stats;
  const CampaignResult result = coordinator.run(plan, &stats);

  EXPECT_EQ(inject::result_fingerprint(result),
            arch == isa::Arch::kCisca ? kPinnedCisca : kPinnedRiscf);
  EXPECT_EQ(result.executed(), total);
  EXPECT_FALSE(result.interrupted);
  // The chaos actually happened and the fabric recovered from it.
  EXPECT_GE(result.fabric_worker_deaths, 3u);
  EXPECT_GE(result.fabric_redispatches, 3u);
  EXPECT_GT(result.fabric_backoff_waits, 0u);
  EXPECT_EQ(result.fabric_workers, 3u);
  EXPECT_EQ(stats.missing, 0u);
  remove_shards(coordinator, total);
}

INSTANTIATE_TEST_SUITE_P(BothArches, FabricChaosTest,
                         ::testing::Values(isa::Arch::kCisca,
                                           isa::Arch::kRiscf),
                         [](const auto& info) {
                           return info.param == isa::Arch::kCisca
                                      ? std::string("cisca")
                                      : std::string("riscf");
                         });

TEST(FabricDegradation, AbortsBelowMinWorkersThenResumesBitIdentically) {
  const CampaignPlan plan =
      build_campaign_plan(pinned_spec(isa::Arch::kCisca));
  const u32 total = static_cast<u32>(plan.targets.size());

  // Phase 1: every slot dies once, no restart budget, floor at 2 live
  // slots — the fabric must degrade past the floor and abort instead of
  // limping on, leaving the shard journals behind.
  FabricOptions opt = base_options("degrade");
  opt.workers = 2;
  opt.min_workers = 2;
  opt.max_restarts_per_slot = 0;
  opt.chaos_kill_after = 1;
  {
    FabricCoordinator coordinator(opt);
    remove_shards(coordinator, total);
    EXPECT_THROW(coordinator.run(plan), FabricError);
    // The abort is not an erase: at least one shard journal survived
    // with its fsync'd records.
    size_t survivors = 0;
    for (const std::string& p : coordinator.journal_paths(total)) {
      if (std::filesystem::exists(p)) ++survivors;
    }
    EXPECT_GT(survivors, 0u);
  }

  // Phase 2: the same fabric topology, chaos off — exactly what a rerun
  // after a dead (or SIGKILLed) coordinator does.  Shard boundaries are
  // pure functions of (total, shards), so the journals still line up,
  // and the spliced result is the pinned single-process fingerprint.
  opt.max_restarts_per_slot = 3;
  opt.chaos_kill_after = 0;
  FabricCoordinator coordinator(opt);
  const CampaignResult result = coordinator.run(plan);
  EXPECT_EQ(inject::result_fingerprint(result), kPinnedCisca);
  EXPECT_EQ(result.executed(), total);
  // Some records came from the phase-1 journals, not fresh execution.
  EXPECT_GT(result.resumed_records, 0u);
  remove_shards(coordinator, total);
}

}  // namespace
}  // namespace kfi::fabric
