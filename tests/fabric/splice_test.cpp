// Journal splicing property tests: random shard boundaries, run through
// the engine's slice mode into per-shard journals, must splice back into
// the single-process campaign bit-identically (the fabric's determinism
// contract, checked here without any subprocess machinery).
#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.hpp"
#include "fabric/splice.hpp"
#include "inject/campaign.hpp"
#include "inject/engine.hpp"
#include "inject/journal.hpp"
#include "inject/plan.hpp"

namespace kfi::fabric {
namespace {

using inject::CampaignEngine;
using inject::CampaignKind;
using inject::CampaignPlan;
using inject::CampaignResult;
using inject::CampaignSpec;
using inject::InjectionJournal;
using inject::JournalError;
using inject::RunControl;

std::string tmp_prefix(const std::string& tag) {
  return (std::filesystem::temp_directory_path() / ("kfi_splice_" + tag))
      .string();
}

CampaignSpec small_spec(isa::Arch arch, u32 injections = 12) {
  CampaignSpec spec;
  spec.arch = arch;
  spec.kind = CampaignKind::kData;
  spec.injections = injections;
  spec.seed = 77;
  return spec;
}

/// Run `slice` of the plan into a fresh journal at `path`.
void run_slice_into_journal(const CampaignPlan& plan,
                            const std::vector<u32>& slice,
                            const std::string& path, u32 jobs) {
  std::filesystem::remove(path);
  InjectionJournal journal = InjectionJournal::create(path, plan);
  RunControl ctl;
  ctl.journal = &journal;
  ctl.indices = &slice;
  CampaignEngine(jobs).run(plan, {}, ctl);
}

class SpliceParityTest
    : public ::testing::TestWithParam<std::tuple<isa::Arch, u32>> {};

TEST_P(SpliceParityTest, RandomShardBoundariesReproduceTheSerialRun) {
  const auto& [arch, jobs] = GetParam();
  const CampaignPlan plan = build_campaign_plan(small_spec(arch));
  const u32 total = static_cast<u32>(plan.targets.size());
  const CampaignResult serial = CampaignEngine(1).run(plan);
  const u64 want = inject::result_fingerprint(serial);

  Rng rng(0xB0A7 + static_cast<u64>(arch) * 131 + jobs);
  for (u32 trial = 0; trial < 3; ++trial) {
    // Cut [0, total) at 0-3 random interior boundaries: shard layouts
    // the shard_indices() helper would never produce, on purpose — the
    // splice must not depend on the near-equal layout.
    std::vector<u32> cuts = {0, total};
    const u32 n_cuts = static_cast<u32>(rng.next_u64() % 4);
    for (u32 c = 0; c < n_cuts; ++c) {
      cuts.push_back(1 + static_cast<u32>(rng.next_u64() % (total - 1)));
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

    std::vector<std::string> paths;
    for (size_t s = 0; s + 1 < cuts.size(); ++s) {
      std::vector<u32> slice;
      for (u32 i = cuts[s]; i < cuts[s + 1]; ++i) slice.push_back(i);
      const std::string path = tmp_prefix(
          std::to_string(static_cast<int>(arch)) + "_" +
          std::to_string(jobs) + "_t" + std::to_string(trial) + "_s" +
          std::to_string(s) + ".kfij");
      run_slice_into_journal(plan, slice, path, jobs);
      paths.push_back(path);
    }

    SpliceStats stats;
    const CampaignResult spliced = splice_journals(plan, paths, &stats);
    EXPECT_EQ(inject::result_fingerprint(spliced), want)
        << "trial " << trial << " with " << paths.size() << " shards";
    EXPECT_EQ(stats.chosen, total);
    EXPECT_EQ(stats.missing, 0u);
    EXPECT_FALSE(spliced.interrupted);
    for (const std::string& path : paths) std::filesystem::remove(path);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ArchesAndJobs, SpliceParityTest,
    ::testing::Combine(::testing::Values(isa::Arch::kCisca,
                                         isa::Arch::kRiscf),
                       ::testing::Values(1u, 4u)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == isa::Arch::kCisca
                             ? "cisca"
                             : "riscf") +
             "_jobs" + std::to_string(std::get<1>(info.param));
    });

class SpliceRulesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    plan_ = build_campaign_plan(small_spec(isa::Arch::kRiscf, 8));
    total_ = static_cast<u32>(plan_.targets.size());
  }
  std::string path(const std::string& tag) {
    const std::string p = tmp_prefix("rules_" + tag + ".kfij");
    cleanup_.push_back(p);
    return p;
  }
  void TearDown() override {
    for (const std::string& p : cleanup_) std::filesystem::remove(p);
  }

  CampaignPlan plan_;
  u32 total_ = 0;
  std::vector<std::string> cleanup_;
};

TEST_F(SpliceRulesTest, OverlappingShardsDedupIdenticalEntries) {
  // Two journals that both ran the middle indices: the duplicates are
  // bit-identical (determinism), so the splice drops them silently.
  std::vector<u32> left, right;
  for (u32 i = 0; i < total_; ++i) {
    if (i <= total_ / 2) left.push_back(i);
    if (i >= total_ / 2 - 1) right.push_back(i);
  }
  const std::string a = path("overlap_a"), b = path("overlap_b");
  run_slice_into_journal(plan_, left, a, 1);
  run_slice_into_journal(plan_, right, b, 1);
  SpliceStats stats;
  const CampaignResult spliced = splice_journals(plan_, {a, b}, &stats);
  EXPECT_EQ(inject::result_fingerprint(spliced),
            inject::result_fingerprint(CampaignEngine(1).run(plan_)));
  EXPECT_EQ(stats.duplicates, 2u);
  EXPECT_EQ(spliced.fabric_spliced_duplicates, 2u);
}

TEST_F(SpliceRulesTest, SuccessfulRecordSupersedesQuarantined) {
  std::vector<u32> slice;
  for (u32 i = 0; i < total_; ++i) slice.push_back(i);
  const std::string good = path("good"), bad = path("bad");
  run_slice_into_journal(plan_, slice, good, 1);
  {
    // A journal where every index died as a harness error (retries
    // exhausted): what a repeatedly-crashing worker leaves behind.
    std::filesystem::remove(bad);
    InjectionJournal journal = InjectionJournal::create(bad, plan_);
    RunControl ctl;
    ctl.journal = &journal;
    ctl.indices = &slice;
    ctl.retries = 0;
    ctl.retry_backoff_base = 0.0;
    ctl.harness_fault_hook = [](u32, u32) {
      throw std::runtime_error("hook: induced harness fault");
    };
    CampaignEngine(1).run(plan_, {}, ctl);
  }
  // Quarantined-only journal: every chosen record is a harness error.
  SpliceStats bad_stats;
  const CampaignResult bad_only =
      splice_journals(plan_, {bad}, &bad_stats);
  EXPECT_EQ(bad_stats.quarantined, total_);
  EXPECT_EQ(bad_only.quarantined, total_);
  // Either splice order: the successful record wins every index.
  for (const auto& order :
       {std::vector<std::string>{bad, good}, {good, bad}}) {
    SpliceStats stats;
    const CampaignResult spliced = splice_journals(plan_, order, &stats);
    EXPECT_EQ(inject::result_fingerprint(spliced),
              inject::result_fingerprint(CampaignEngine(1).run(plan_)));
    EXPECT_EQ(stats.quarantined, 0u);
    EXPECT_EQ(stats.duplicates, total_);
  }
}

TEST_F(SpliceRulesTest, MissingShardLeavesAnInterruptedResult) {
  std::vector<u32> half;
  for (u32 i = 0; i < total_ / 2; ++i) half.push_back(i);
  const std::string a = path("partial");
  run_slice_into_journal(plan_, half, a, 1);
  SpliceStats stats;
  const CampaignResult spliced = splice_journals(plan_, {a}, &stats);
  EXPECT_TRUE(spliced.interrupted);
  EXPECT_EQ(stats.missing, total_ - total_ / 2);
  EXPECT_EQ(spliced.executed(), total_ / 2);
}

TEST_F(SpliceRulesTest, ConflictingSuccessfulEntriesAreRefused) {
  // Determinism says two successful records for one index are identical;
  // a disagreement means the shard set mixes campaigns.  Fabricate one.
  const std::string a = path("conflict_a"), b = path("conflict_b");
  for (const auto& [p, cycles] :
       {std::pair<std::string, u64>{a, 100}, {b, 200}}) {
    std::filesystem::remove(p);
    InjectionJournal journal = InjectionJournal::create(p, plan_);
    inject::JournalEntry e;
    e.index = 0;
    e.record.outcome = inject::OutcomeCategory::kNotManifested;
    e.record.cycles_to_crash = cycles;
    journal.append(e);
  }
  EXPECT_THROW(splice_journals(plan_, {a, b}), JournalError);
}

TEST_F(SpliceRulesTest, ForeignPlanJournalIsRefused) {
  const std::string a = path("foreign");
  CampaignSpec other = small_spec(isa::Arch::kRiscf, 8);
  other.seed = 78;
  const CampaignPlan other_plan = build_campaign_plan(other);
  std::vector<u32> slice = {0, 1};
  run_slice_into_journal(other_plan, slice, a, 1);
  EXPECT_THROW(splice_journals(plan_, {a}), JournalError);
}

TEST_F(SpliceRulesTest, PlanFreeSpliceWritesAResumableJournal) {
  std::vector<u32> left, right;
  for (u32 i = 0; i < total_; ++i) (i < 3 ? left : right).push_back(i);
  const std::string a = path("merge_a"), b = path("merge_b"),
                    merged = path("merged");
  run_slice_into_journal(plan_, left, a, 1);
  run_slice_into_journal(plan_, right, b, 1);
  const SpliceStats stats = splice_journal_files({a, b}, merged);
  EXPECT_EQ(stats.chosen, total_);
  EXPECT_EQ(stats.missing, 0u);
  // The merged file is a normal journal for the same plan: resuming it
  // recovers every record, so the campaign replays bit-identically.
  InjectionJournal journal = InjectionJournal::resume(merged, plan_);
  ASSERT_EQ(journal.recovered().size(), total_);
  RunControl ctl;
  ctl.journal = &journal;
  const CampaignResult resumed = CampaignEngine(1).run(plan_, {}, ctl);
  EXPECT_EQ(resumed.resumed_records, total_);
  EXPECT_EQ(inject::result_fingerprint(resumed),
            inject::result_fingerprint(CampaignEngine(1).run(plan_)));
}

TEST_F(SpliceRulesTest, PlanFreeSpliceRefusesMixedHeaders) {
  CampaignSpec other = small_spec(isa::Arch::kRiscf, 8);
  other.seed = 78;
  const CampaignPlan other_plan = build_campaign_plan(other);
  const std::string a = path("mixed_a"), b = path("mixed_b"),
                    merged = path("mixed_out");
  std::vector<u32> slice = {0, 1};
  run_slice_into_journal(plan_, slice, a, 1);
  run_slice_into_journal(other_plan, slice, b, 1);
  EXPECT_THROW(splice_journal_files({a, b}, merged), JournalError);
  EXPECT_THROW(splice_journal_files({}, merged), JournalError);
}

}  // namespace
}  // namespace kfi::fabric
