#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace kfi {
namespace {

TEST(BucketHistogramTest, SamplesFallInCorrectBuckets) {
  BucketHistogram h({10, 100, 1000});
  h.add(5);     // <=10
  h.add(10);    // <=10 (inclusive upper edge)
  h.add(11);    // <=100
  h.add(1000);  // <=1000
  h.add(1001);  // overflow
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(BucketHistogramTest, FractionsSumToOne) {
  BucketHistogram h({3, 7});
  for (u64 i = 0; i < 100; ++i) h.add(i % 11);
  double sum = 0;
  for (const double f : h.fractions()) sum += f;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(BucketHistogramTest, EmptyHistogramFractionsAreZero) {
  BucketHistogram h({1});
  EXPECT_EQ(h.fraction(0), 0.0);
  EXPECT_EQ(h.fraction(1), 0.0);
}

TEST(BucketHistogramTest, LabelsUseHumanUnits) {
  const BucketHistogram h = make_latency_histogram();
  EXPECT_EQ(h.label(0), "<=3k");
  EXPECT_EQ(h.label(1), "<=10k");
  EXPECT_EQ(h.label(3), "<=1M");
  EXPECT_EQ(h.label(6), "<=1G");
  EXPECT_EQ(h.label(7), ">1G");
}

TEST(BucketHistogramTest, PaperBucketsMatchFigure16) {
  // The paper reports cycles-to-crash in exactly these eight buckets.
  const BucketHistogram h = make_latency_histogram();
  EXPECT_EQ(h.bucket_count(), 8u);
  EXPECT_EQ(latency_bucket_labels().size(), 8u);
}

TEST(BucketHistogramTest, MergeAddsCounts) {
  BucketHistogram a({10}), b({10});
  a.add(1);
  b.add(1);
  b.add(100);
  a.merge(b);
  EXPECT_EQ(a.count(0), 2u);
  EXPECT_EQ(a.count(1), 1u);
  EXPECT_EQ(a.total(), 3u);
}

TEST(BucketHistogramTest, MergeRejectsMismatchedEdges) {
  BucketHistogram a({10}), b({20});
  EXPECT_THROW(a.merge(b), InternalError);
}

TEST(BucketHistogramTest, RejectsUnsortedEdges) {
  EXPECT_THROW(BucketHistogram({10, 5}), InternalError);
  EXPECT_THROW(BucketHistogram({10, 10}), InternalError);
  EXPECT_THROW(BucketHistogram({}), InternalError);
}

TEST(BucketHistogramTest, LatencyBoundaryValues) {
  BucketHistogram h = make_latency_histogram();
  h.add(3000);        // exactly 3k -> first bucket
  h.add(3001);        // -> second
  h.add(1000000000);  // exactly 1G -> seventh
  h.add(1000000001);  // -> >1G
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(6), 1u);
  EXPECT_EQ(h.count(7), 1u);
}

}  // namespace
}  // namespace kfi
