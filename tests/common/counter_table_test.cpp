#include <gtest/gtest.h>

#include "common/counter_map.hpp"
#include "common/table.hpp"

namespace kfi {
namespace {

TEST(CounterMapTest, CountsAndTotals) {
  CounterMap m;
  m.add("a");
  m.add("b", 3);
  m.add("a");
  EXPECT_EQ(m.get("a"), 2u);
  EXPECT_EQ(m.get("b"), 3u);
  EXPECT_EQ(m.get("missing"), 0u);
  EXPECT_EQ(m.total(), 5u);
}

TEST(CounterMapTest, KeysKeepInsertionOrder) {
  CounterMap m;
  m.add("z");
  m.add("a");
  m.add("z");
  m.add("m");
  ASSERT_EQ(m.keys().size(), 3u);
  EXPECT_EQ(m.keys()[0], "z");
  EXPECT_EQ(m.keys()[1], "a");
  EXPECT_EQ(m.keys()[2], "m");
}

TEST(CounterMapTest, FractionOverTotal) {
  CounterMap m;
  m.add("x", 1);
  m.add("y", 3);
  EXPECT_DOUBLE_EQ(m.fraction("x"), 0.25);
  EXPECT_DOUBLE_EQ(m.fraction("y"), 0.75);
}

TEST(CounterMapTest, EmptyFractionIsZero) {
  CounterMap m;
  EXPECT_EQ(m.fraction("anything"), 0.0);
  EXPECT_TRUE(m.empty());
}

TEST(CounterMapTest, MergePreservesOrderAndCounts) {
  CounterMap a, b;
  a.add("x");
  b.add("y", 2);
  b.add("x", 5);
  a.merge(b);
  EXPECT_EQ(a.get("x"), 6u);
  EXPECT_EQ(a.get("y"), 2u);
  EXPECT_EQ(a.keys()[0], "x");
  EXPECT_EQ(a.keys()[1], "y");
}

TEST(AsciiTableTest, RendersAlignedColumns) {
  AsciiTable t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| name        |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 22"), std::string::npos);
}

TEST(AsciiTableTest, ShortRowsRenderEmptyCells) {
  AsciiTable t({"a", "b", "c"});
  t.add_row({"only"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| only |"), std::string::npos);
}

TEST(FormatTest, Percent) {
  EXPECT_EQ(format_percent(0.4239), "42.4%");
  EXPECT_EQ(format_percent(0.0), "0.0%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

TEST(FormatTest, CountPercent) {
  EXPECT_EQ(format_count_percent(12, 0.5), "12 (50.0%)");
}

}  // namespace
}  // namespace kfi
