#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace kfi {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(RngTest, BelowOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(9);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const u64 v = rng.range(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    hit_lo |= v == 3;
    hit_hi |= v == 6;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(23);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) counts[rng.below(10)] += 1;
  for (const int c : counts) {
    EXPECT_NEAR(c, 10000, 500);
  }
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(5);
  Rng child = a.split();
  // Child stream differs from a fresh parent continuation.
  std::set<u64> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(a.next_u64());
    seen.insert(child.next_u64());
  }
  EXPECT_EQ(seen.size(), 200u);
}

TEST(RngTest, PickCoversAllElements) {
  Rng rng(29);
  const std::vector<int> items{10, 20, 30};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.pick(items));
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, PoissonIsDeterministicPerSeed) {
  Rng a(31), b(31);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.poisson(2.5), b.poisson(2.5));
  }
}

TEST(RngTest, PoissonMatchesMeanAndVariance) {
  Rng rng(37);
  const double mean = 3.0;
  const int n = 50000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.poisson(mean);
    sum += v;
    sum_sq += v * v;
  }
  const double m = sum / n;
  const double var = sum_sq / n - m * m;
  // For Poisson, mean == variance == lambda.
  EXPECT_NEAR(m, mean, 0.05);
  EXPECT_NEAR(var, mean, 0.15);
}

TEST(RngTest, PoissonZeroOrNegativeMeanIsAlwaysZero) {
  Rng rng(41);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.poisson(0.0), 0u);
    EXPECT_EQ(rng.poisson(-1.0), 0u);
  }
}

TEST(RngTest, SplitMix64KnownSequenceIsStable) {
  u64 state = 0;
  const u64 first = splitmix64(state);
  const u64 second = splitmix64(state);
  EXPECT_NE(first, second);
  // Regression pin: the seeding function must never change silently, or
  // every recorded campaign would become unreproducible.
  u64 s2 = 0;
  EXPECT_EQ(splitmix64(s2), first);
}

}  // namespace
}  // namespace kfi
