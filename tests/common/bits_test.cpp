#include "common/bits.hpp"

#include <gtest/gtest.h>

namespace kfi {
namespace {

TEST(BitsTest, FlipBitTogglesExactlyOneBit) {
  for (u32 bit = 0; bit < 32; ++bit) {
    const u32 v = 0xA5A5A5A5u;
    const u32 flipped = flip_bit(v, bit);
    EXPECT_EQ(v ^ flipped, 1u << bit);
  }
}

TEST(BitsTest, FlipBitIsInvolution) {
  // A transient fault model requires flip(flip(x)) == x.
  for (u32 bit = 0; bit < 8; ++bit) {
    const u8 v = 0x3C;
    EXPECT_EQ(flip_bit(flip_bit(v, bit), bit), v);
  }
}

TEST(BitsTest, Bits32ExtractsField) {
  const u32 v = 0xDEADBEEFu;
  EXPECT_EQ(bits32(v, 0, 4), 0xFu);
  EXPECT_EQ(bits32(v, 4, 8), 0xEEu);
  EXPECT_EQ(bits32(v, 28, 4), 0xDu);
  EXPECT_EQ(bits32(v, 0, 32), v);
}

TEST(BitsTest, SetBits32RoundTrips) {
  u32 v = 0;
  v = set_bits32(v, 8, 8, 0xAB);
  EXPECT_EQ(bits32(v, 8, 8), 0xABu);
  EXPECT_EQ(v, 0xAB00u);
  v = set_bits32(v, 8, 8, 0x12);
  EXPECT_EQ(v, 0x1200u);
}

TEST(BitsTest, TestBit) {
  EXPECT_TRUE(test_bit(0x80000000u, 31));
  EXPECT_FALSE(test_bit(0x80000000u, 30));
  EXPECT_TRUE(test_bit(u8{1}, 0));
}

TEST(BitsTest, SignExtend32) {
  EXPECT_EQ(sign_extend32(0xFF, 8), -1);
  EXPECT_EQ(sign_extend32(0x7F, 8), 127);
  EXPECT_EQ(sign_extend32(0x8000, 16), -32768);
  EXPECT_EQ(sign_extend32(0xFFFC, 16), -4);
  EXPECT_EQ(sign_extend32(0x0004, 16), 4);
}

TEST(BitsTest, Popcount32) {
  EXPECT_EQ(popcount32(0), 0u);
  EXPECT_EQ(popcount32(0xFFFFFFFFu), 32u);
  EXPECT_EQ(popcount32(0x80000001u), 2u);
}

}  // namespace
}  // namespace kfi
