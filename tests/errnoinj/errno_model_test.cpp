// ErrnoModel value-type contract: syscall-list parsing, validation of
// every knob combination, naming, and fingerprint sensitivity.
#include <gtest/gtest.h>

#include "errnoinj/errno_model.hpp"

namespace kfi::errnoinj {
namespace {

using kernel::Syscall;

u32 mask_of(const std::string& list) {
  std::string bad;
  const auto m = parse_syscall_list(list, &bad);
  EXPECT_TRUE(m.has_value()) << "bad token: " << bad;
  return m.value_or(0);
}

TEST(ParseSyscallList, SingleAndMultiple) {
  EXPECT_EQ(mask_of("read"), 1u << static_cast<u32>(Syscall::kRead));
  EXPECT_EQ(mask_of("read,write"),
            (1u << static_cast<u32>(Syscall::kRead)) |
                (1u << static_cast<u32>(Syscall::kWrite)));
  EXPECT_EQ(mask_of("alloc,free,send,recv"),
            (1u << static_cast<u32>(Syscall::kAlloc)) |
                (1u << static_cast<u32>(Syscall::kFree)) |
                (1u << static_cast<u32>(Syscall::kSend)) |
                (1u << static_cast<u32>(Syscall::kRecv)));
}

TEST(ParseSyscallList, AllIsTheFullEligibleMask) {
  EXPECT_EQ(mask_of("all"), eligible_syscall_mask());
}

TEST(ParseSyscallList, RejectsUnknownAndInfallibleSyscalls) {
  std::string bad;
  EXPECT_FALSE(parse_syscall_list("bogus", &bad).has_value());
  EXPECT_EQ(bad, "bogus");
  // yield/getpid cannot fail in minux: they are not eligible tokens.
  EXPECT_FALSE(parse_syscall_list("yield", &bad).has_value());
  EXPECT_FALSE(parse_syscall_list("read,getpid", &bad).has_value());
  EXPECT_EQ(bad, "getpid");
}

TEST(ParseSyscallList, RejectsEmptyTokens) {
  std::string bad;
  EXPECT_FALSE(parse_syscall_list("", &bad).has_value());
  EXPECT_FALSE(parse_syscall_list("read,", &bad).has_value());
  EXPECT_FALSE(parse_syscall_list("read,,write", &bad).has_value());
}

TEST(ErrnoModelValidate, DisabledModelIsValid) {
  ErrnoModel m;
  EXPECT_NO_THROW(m.validate());
}

TEST(ErrnoModelValidate, DefaultEnabledNthModelIsValid) {
  ErrnoModel m;
  m.syscalls = mask_of("read,write");
  EXPECT_NO_THROW(m.validate());
  m.nth = 5;
  EXPECT_NO_THROW(m.validate());
}

TEST(ErrnoModelValidate, RateModelNeedsPositiveBoundedRate) {
  ErrnoModel m;
  m.syscalls = mask_of("read");
  m.trigger = ErrnoTrigger::kRate;
  EXPECT_THROW(m.validate(), ErrnoModelError);  // rate == 0
  m.rate = 2.0;
  EXPECT_NO_THROW(m.validate());
  m.rate = -1.0;
  EXPECT_THROW(m.validate(), ErrnoModelError);
  m.rate = 4096.0;
  EXPECT_THROW(m.validate(), ErrnoModelError);
}

TEST(ErrnoModelValidate, NthModelRejectsStrayRate) {
  ErrnoModel m;
  m.syscalls = mask_of("read");
  m.rate = 2.0;  // trigger is kNth
  EXPECT_THROW(m.validate(), ErrnoModelError);
}

TEST(ErrnoModelValidate, RejectsIneligibleMaskBits) {
  ErrnoModel m;
  m.syscalls = 1u << static_cast<u32>(Syscall::kGetpid);
  EXPECT_THROW(m.validate(), ErrnoModelError);
}

TEST(ErrnoModelValidate, DisabledModelWithRateRejected) {
  ErrnoModel m;
  m.rate = 1.0;
  EXPECT_THROW(m.validate(), ErrnoModelError);
}

TEST(ErrnoModelEligible, MatchesMask) {
  ErrnoModel m;
  m.syscalls = mask_of("read,send");
  EXPECT_TRUE(m.eligible(Syscall::kRead));
  EXPECT_TRUE(m.eligible(Syscall::kSend));
  EXPECT_FALSE(m.eligible(Syscall::kWrite));
  EXPECT_FALSE(m.eligible(Syscall::kYield));
  EXPECT_FALSE(m.eligible(Syscall::kGetpid));
}

TEST(ErrnoModelName, DescribesTriggerValueAndSyscalls) {
  ErrnoModel m;
  m.syscalls = mask_of("read,write");
  const std::string nth = m.name();
  EXPECT_NE(nth.find("nth"), std::string::npos) << nth;
  EXPECT_NE(nth.find("read"), std::string::npos) << nth;
  EXPECT_NE(nth.find("write"), std::string::npos) << nth;
  m.syscalls = eligible_syscall_mask();
  m.trigger = ErrnoTrigger::kRate;
  m.rate = 2.0;
  m.value = ErrnoValue::kDrawnNegative;
  const std::string rate = m.name();
  EXPECT_NE(rate.find("rate"), std::string::npos) << rate;
  EXPECT_NE(rate.find("all"), std::string::npos) << rate;
  EXPECT_NE(rate.find("drawn"), std::string::npos) << rate;
}

TEST(ErrnoModelFingerprint, SensitiveToEveryField) {
  ErrnoModel base;
  base.syscalls = mask_of("read,write");
  const u64 fp = errno_model_fingerprint(base);
  EXPECT_EQ(fp, errno_model_fingerprint(base));  // stable

  ErrnoModel m = base;
  m.syscalls = mask_of("read");
  EXPECT_NE(fp, errno_model_fingerprint(m));
  m = base;
  m.value = ErrnoValue::kDrawnNegative;
  EXPECT_NE(fp, errno_model_fingerprint(m));
  m = base;
  m.trigger = ErrnoTrigger::kRate;
  m.rate = 2.0;
  EXPECT_NE(fp, errno_model_fingerprint(m));
  m = base;
  m.nth = 7;
  EXPECT_NE(fp, errno_model_fingerprint(m));
}

TEST(SyscallNames, RoundTrip) {
  EXPECT_EQ(syscall_name(static_cast<u32>(Syscall::kRead)), "read");
  EXPECT_EQ(syscall_name(static_cast<u32>(Syscall::kRecv)), "recv");
  EXPECT_EQ(syscall_list_name(eligible_syscall_mask()), "all");
  EXPECT_EQ(syscall_list_name(mask_of("read,write")), "read,write");
}

}  // namespace
}  // namespace kfi::errnoinj
