// CascadeTracker classification contract: contained vs propagated vs
// silent, cascade-length arithmetic, and the realism/state-deviation tags.
#include <gtest/gtest.h>

#include "errnoinj/cascade.hpp"

namespace kfi::errnoinj {
namespace {

TEST(CascadeTracker, NoForcesClassifiesNone) {
  CascadeTracker t;
  for (u32 op = 0; op < 8; ++op) t.record_op(op, 0, true);
  const CascadeSummary s = t.finalize(true, true, 8);
  EXPECT_EQ(s.forced, 0u);
  EXPECT_EQ(s.containment, CascadeClass::kNone);
  EXPECT_EQ(s.deviating_ops, 0u);
  EXPECT_EQ(s.cascade_length, 0u);
  EXPECT_FALSE(s.checked_at_site);
  EXPECT_FALSE(s.state_deviation);
}

TEST(CascadeTracker, ForceWithNoDeviationIsSilent) {
  CascadeTracker t;
  t.record_op(0, 0, true);
  t.record_op(1, 1, true);  // forced, but the check never noticed
  t.record_op(2, 0, true);
  const CascadeSummary s = t.finalize(true, true, 3);
  EXPECT_EQ(s.forced, 1u);
  EXPECT_EQ(s.first_forced_op, 1u);
  EXPECT_EQ(s.containment, CascadeClass::kSilent);
  EXPECT_EQ(s.cascade_length, 0u);
  EXPECT_FALSE(s.checked_at_site);
  EXPECT_FALSE(s.state_deviation);
}

TEST(CascadeTracker, DeviationOnlyAtForcedOpIsContained) {
  CascadeTracker t;
  t.record_op(0, 0, true);
  t.record_op(1, 1, false);  // check fired right at the forced op
  t.record_op(2, 0, true);
  t.record_op(3, 0, true);
  const CascadeSummary s = t.finalize(true, true, 4);
  EXPECT_EQ(s.containment, CascadeClass::kContained);
  EXPECT_EQ(s.deviating_ops, 1u);
  EXPECT_EQ(s.cascade_length, 1u);  // the forced op itself, inclusive
  EXPECT_TRUE(s.checked_at_site);
  EXPECT_FALSE(s.state_deviation);
}

TEST(CascadeTracker, DeviationAfterForcedOpPropagates) {
  CascadeTracker t;
  t.record_op(0, 0, true);
  t.record_op(1, 1, false);
  t.record_op(2, 0, true);
  t.record_op(3, 0, false);  // later op still deviating: a cascade
  t.record_op(4, 0, true);
  const CascadeSummary s = t.finalize(true, true, 5);
  EXPECT_EQ(s.containment, CascadeClass::kPropagated);
  EXPECT_EQ(s.deviating_ops, 2u);
  EXPECT_EQ(s.cascade_length, 3u);  // ops 1..3 inclusive
  EXPECT_TRUE(s.checked_at_site);
}

TEST(CascadeTracker, FailedFinalCheckPropagatesEvenIfOpsWereClean) {
  CascadeTracker t;
  t.record_op(0, 1, true);
  t.record_op(1, 0, true);
  const CascadeSummary s = t.finalize(true, /*final_ok=*/false, 2);
  EXPECT_EQ(s.containment, CascadeClass::kPropagated);
  EXPECT_TRUE(s.state_deviation);
}

TEST(CascadeTracker, CrashAfterForcePropagatesToRunEnd) {
  CascadeTracker t;
  t.record_op(0, 0, true);
  t.record_op(2, 1, false);
  // Run dies (crash/hang) before the workload completes at op 7.
  const CascadeSummary s = t.finalize(/*completed=*/false, false, 7);
  EXPECT_EQ(s.containment, CascadeClass::kPropagated);
  EXPECT_EQ(s.cascade_length, 5u);  // first force (2) to run end (7)
  EXPECT_FALSE(s.state_deviation);  // final_check never ran
}

TEST(CascadeTracker, CheckFailuresBeforeAnyForceAreIgnored) {
  // A pre-force check failure cannot be blamed on the injection; only
  // deviations at or after the first force count.
  CascadeTracker t;
  t.record_op(0, 0, false);
  t.record_op(1, 1, true);
  t.record_op(2, 0, true);
  const CascadeSummary s = t.finalize(true, true, 3);
  EXPECT_EQ(s.containment, CascadeClass::kSilent);
  EXPECT_EQ(s.deviating_ops, 0u);
  EXPECT_FALSE(s.checked_at_site);
}

TEST(CascadeTracker, MultipleForcesCountAndKeepFirstSite) {
  // Both deviations sit exactly at forced ops, so the run is contained
  // even though two separate sites deviated.
  CascadeTracker t;
  t.record_op(0, 1, false);
  t.record_op(1, 0, true);
  t.record_op(2, 2, false);  // two forces inside one op
  const CascadeSummary s = t.finalize(true, true, 3);
  EXPECT_EQ(s.forced, 3u);
  EXPECT_EQ(s.first_forced_op, 0u);
  EXPECT_EQ(s.cascade_length, 3u);  // ops 0..2 inclusive
  EXPECT_EQ(s.containment, CascadeClass::kContained);
  EXPECT_TRUE(s.checked_at_site);
}

TEST(CascadeClassName, AllValuesNamed) {
  EXPECT_STREQ(cascade_class_name(CascadeClass::kNone), "none");
  EXPECT_STREQ(cascade_class_name(CascadeClass::kContained), "contained");
  EXPECT_STREQ(cascade_class_name(CascadeClass::kPropagated), "propagated");
  EXPECT_STREQ(cascade_class_name(CascadeClass::kSilent), "silent");
}

}  // namespace
}  // namespace kfi::errnoinj
