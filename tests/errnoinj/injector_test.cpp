// ErrnoInjector hook contract, driven through a real booted Machine on
// both architectures: forced swaps happen exactly at the scheduled
// eligible invocations, ineligible syscalls never advance the counter,
// an installed-but-inactive hook is bit-identical to no hook at all, and
// a forced result seeds the taint engine at the return-value register.
#include <gtest/gtest.h>

#include <vector>

#include "errnoinj/injector.hpp"
#include "kernel/abi.hpp"
#include "kernel/layout.hpp"
#include "kernel/machine.hpp"
#include "trace/taint.hpp"

namespace kfi::errnoinj {
namespace {

using kernel::EventKind;
using kernel::Machine;
using kernel::MachineOptions;
using kernel::Syscall;

ErrnoModel read_write_model() {
  ErrnoModel m;
  std::string bad;
  m.syscalls = *parse_syscall_list("read,write", &bad);
  return m;
}

class ErrnoInjectorTest : public ::testing::TestWithParam<isa::Arch> {
 protected:
  ErrnoInjectorTest() : machine_(GetParam(), MachineOptions{}) {}

  u32 must_syscall(Syscall nr, u32 a0 = 0, u32 a1 = 0, u32 a2 = 0) {
    const kernel::Event ev = machine_.syscall(nr, a0, a1, a2);
    EXPECT_EQ(ev.kind, EventKind::kSyscallDone);
    return ev.ret;
  }

  Machine machine_;
};

TEST_P(ErrnoInjectorTest, ForcesScheduledInvocationAndLogsNaturalReturn) {
  ErrnoInjector inj(read_write_model(),
                    kernel::syscall_result_slot(GetParam()));
  machine_.set_syscall_result_hook(&inj);
  inj.arm({{0, kernel::kErrReturn}});

  const u32 ret =
      must_syscall(Syscall::kRead, 0, kernel::kUserBufBase, kernel::kBlockSize);
  EXPECT_EQ(ret, kernel::kErrReturn);
  ASSERT_EQ(inj.forced().size(), 1u);
  EXPECT_EQ(inj.forced()[0].eligible_index, 0u);
  EXPECT_EQ(inj.forced()[0].syscall, static_cast<u32>(Syscall::kRead));
  EXPECT_EQ(inj.forced()[0].natural_ret, kernel::kBlockSize);
  EXPECT_EQ(inj.forced()[0].forced_ret, kernel::kErrReturn);

  // The schedule is spent: the next read returns naturally.
  EXPECT_EQ(must_syscall(Syscall::kRead, 0, kernel::kUserBufBase,
                         kernel::kBlockSize),
            kernel::kBlockSize);
  EXPECT_EQ(inj.eligible_seen(), 2u);
}

TEST_P(ErrnoInjectorTest, IneligibleSyscallsDoNotAdvanceTheCounter) {
  ErrnoInjector inj(read_write_model(),
                    kernel::syscall_result_slot(GetParam()));
  machine_.set_syscall_result_hook(&inj);
  inj.arm({{0, kernel::kErrReturn}});

  // getpid/yield/alloc are outside the read,write mask: results untouched,
  // counter frozen, schedule still pending.
  EXPECT_EQ(must_syscall(Syscall::kGetpid), 1u);
  EXPECT_EQ(must_syscall(Syscall::kYield), 0u);
  EXPECT_NE(must_syscall(Syscall::kAlloc), 0u);
  EXPECT_EQ(inj.eligible_seen(), 0u);
  EXPECT_TRUE(inj.forced().empty());

  // The first eligible invocation still gets forced.
  EXPECT_EQ(must_syscall(Syscall::kRead, 0, kernel::kUserBufBase,
                         kernel::kBlockSize),
            kernel::kErrReturn);
}

TEST_P(ErrnoInjectorTest, SchedulesByEligibleIndexNotCallOrder) {
  ErrnoInjector inj(read_write_model(),
                    kernel::syscall_result_slot(GetParam()));
  machine_.set_syscall_result_hook(&inj);
  inj.arm({{1, kernel::kErrReturn}});

  // Invocation 0 passes through, invocation 1 is forced.
  EXPECT_EQ(must_syscall(Syscall::kRead, 0, kernel::kUserBufBase,
                         kernel::kBlockSize),
            kernel::kBlockSize);
  EXPECT_EQ(must_syscall(Syscall::kRead, 0, kernel::kUserBufBase,
                         kernel::kBlockSize),
            kernel::kErrReturn);
  ASSERT_EQ(inj.forced().size(), 1u);
  EXPECT_EQ(inj.forced()[0].eligible_index, 1u);
}

TEST_P(ErrnoInjectorTest, DrawnNegativeValueIsDeliveredVerbatim) {
  ErrnoModel model = read_write_model();
  model.value = ErrnoValue::kDrawnNegative;
  ErrnoInjector inj(model, kernel::syscall_result_slot(GetParam()));
  machine_.set_syscall_result_hook(&inj);
  const u32 drawn = 0xFFFFFFF4u;  // -12, as a plan's draw would produce
  inj.arm({{0, drawn}});

  EXPECT_EQ(must_syscall(Syscall::kRead, 0, kernel::kUserBufBase,
                         kernel::kBlockSize),
            drawn);
  ASSERT_EQ(inj.forced().size(), 1u);
  EXPECT_EQ(inj.forced()[0].forced_ret, drawn);
}

TEST_P(ErrnoInjectorTest, DisarmDropsScheduleAndLog) {
  ErrnoInjector inj(read_write_model(),
                    kernel::syscall_result_slot(GetParam()));
  machine_.set_syscall_result_hook(&inj);
  inj.arm({{0, kernel::kErrReturn}});
  must_syscall(Syscall::kRead, 0, kernel::kUserBufBase, kernel::kBlockSize);
  ASSERT_EQ(inj.forced().size(), 1u);

  inj.disarm();
  EXPECT_TRUE(inj.forced().empty());
  EXPECT_EQ(inj.eligible_seen(), 0u);
  EXPECT_EQ(must_syscall(Syscall::kRead, 0, kernel::kUserBufBase,
                         kernel::kBlockSize),
            kernel::kBlockSize);
}

TEST_P(ErrnoInjectorTest, InactiveHookIsBitIdenticalToNoHook) {
  // Machine A: no hook.  Machine B: a disabled-model injector installed.
  // Every return value and every observable counter must match — the seam
  // may not perturb legacy campaigns.
  Machine bare(GetParam(), MachineOptions{});
  ErrnoInjector idle_inj(ErrnoModel{},
                         kernel::syscall_result_slot(GetParam()));
  machine_.set_syscall_result_hook(&idle_inj);

  const std::vector<Syscall> script = {Syscall::kRead,   Syscall::kGetpid,
                                       Syscall::kWrite,  Syscall::kAlloc,
                                       Syscall::kYield,  Syscall::kRead,
                                       Syscall::kSend,   Syscall::kRecv};
  for (const Syscall nr : script) {
    u32 a0 = 0, a1 = 0, a2 = 0;
    switch (nr) {
      case Syscall::kRead:
      case Syscall::kWrite:
        a0 = 0, a1 = kernel::kUserBufBase, a2 = kernel::kBlockSize;
        break;
      case Syscall::kSend:
        a0 = kernel::kUserBufBase, a1 = 32;
        break;
      case Syscall::kRecv:
        a0 = kernel::kUserBufBase, a1 = 256;
        break;
      default:
        break;
    }
    const kernel::Event hooked = machine_.syscall(nr, a0, a1, a2);
    const kernel::Event plain = bare.syscall(nr, a0, a1, a2);
    ASSERT_EQ(hooked.kind, EventKind::kSyscallDone);
    ASSERT_EQ(plain.kind, EventKind::kSyscallDone);
    EXPECT_EQ(hooked.ret, plain.ret)
        << "syscall " << static_cast<u32>(nr) << " diverged";
  }
  EXPECT_EQ(machine_.read_global("syscall_count"),
            bare.read_global("syscall_count"));
  EXPECT_EQ(machine_.read_global("jiffies"), bare.read_global("jiffies"));
  EXPECT_EQ(machine_.user_cycles(), bare.user_cycles());
  EXPECT_EQ(idle_inj.eligible_seen(), 0u);
}

TEST_P(ErrnoInjectorTest, ForcedResultSeedsTheTaintEngine) {
  trace::TaintEngine taint;
  taint.reset();
  ErrnoInjector inj(read_write_model(),
                    kernel::syscall_result_slot(GetParam()));
  inj.set_taint_engine(&taint);
  machine_.set_syscall_result_hook(&inj);
  inj.arm({{0, kernel::kErrReturn}});

  must_syscall(Syscall::kRead, 0, kernel::kUserBufBase, kernel::kBlockSize);
  ASSERT_EQ(inj.forced().size(), 1u);
  EXPECT_GT(taint.reg_depth(kernel::syscall_result_slot(GetParam())), 0u)
      << "forced errno did not taint the result register";
}

INSTANTIATE_TEST_SUITE_P(BothArchs, ErrnoInjectorTest,
                         ::testing::Values(isa::Arch::kCisca,
                                           isa::Arch::kRiscf),
                         [](const auto& info) {
                           return info.param == isa::Arch::kCisca ? "cisca"
                                                                  : "riscf";
                         });

}  // namespace
}  // namespace kfi::errnoinj
