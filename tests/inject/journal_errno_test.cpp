// Journal v4 contract for the errno campaign family: cascade blocks
// round-trip bit-exactly, errno targets are a v4-only construct (the v3
// reader rejects the kind byte), and a v4 journal written for a different
// errno model is refused on resume exactly like a foreign fault model.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "errnoinj/errno_model.hpp"
#include "inject/journal.hpp"
#include "inject/plan.hpp"
#include "kernel/abi.hpp"

namespace kfi::inject {
namespace {

std::string tmp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// An errno-campaign entry with a fully populated cascade block.
JournalEntry errno_entry() {
  JournalEntry e;
  e.index = 3;
  e.record.target = InjectionTarget::errno_return(12, kernel::kErrReturn);
  e.record.outcome = OutcomeCategory::kFailSilenceViolation;
  e.record.activated = true;
  e.record.syscalls_completed = 44;
  e.record.cascade_valid = true;
  e.record.cascade.forced = 2;
  e.record.cascade.first_forced_op = 12;
  e.record.cascade.first_forced_syscall =
      static_cast<u32>(kernel::Syscall::kRead);
  e.record.cascade.natural_ret = 2048;
  e.record.cascade.forced_ret = kernel::kErrReturn;
  e.record.cascade.deviating_ops = 5;
  e.record.cascade.cascade_length = 9;
  e.record.cascade.containment = errnoinj::CascadeClass::kPropagated;
  e.record.cascade.checked_at_site = true;
  e.record.cascade.state_deviation = true;
  e.reboots = 1;
  e.simulated_cycles = 1234567;
  return e;
}

TEST(JournalErrnoSerialization, CascadeBlockRoundTripsInV4) {
  const JournalEntry e = errno_entry();
  std::vector<u8> buf;
  serialize_journal_entry(buf, e, kJournalVersion);
  size_t pos = 0;
  const auto back = deserialize_journal_entry(buf, pos, kJournalVersion);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(pos, buf.size());
  EXPECT_EQ(back->record.target.kind, CampaignKind::kErrno);
  ASSERT_EQ(back->record.target.sites.size(), 1u);
  EXPECT_EQ(back->record.target.site().task, 12u);
  EXPECT_EQ(back->record.target.site().bit, kernel::kErrReturn);
  ASSERT_TRUE(back->record.cascade_valid);
  const errnoinj::CascadeSummary& cs = back->record.cascade;
  EXPECT_EQ(cs.forced, 2u);
  EXPECT_EQ(cs.first_forced_op, 12u);
  EXPECT_EQ(cs.first_forced_syscall, static_cast<u32>(kernel::Syscall::kRead));
  EXPECT_EQ(cs.natural_ret, 2048u);
  EXPECT_EQ(cs.forced_ret, kernel::kErrReturn);
  EXPECT_EQ(cs.deviating_ops, 5u);
  EXPECT_EQ(cs.cascade_length, 9u);
  EXPECT_EQ(cs.containment, errnoinj::CascadeClass::kPropagated);
  EXPECT_TRUE(cs.checked_at_site);
  EXPECT_TRUE(cs.state_deviation);
}

TEST(JournalErrnoSerialization, V3ReaderRejectsErrnoKindByte) {
  // A v4 writer's errno entry starts with kind byte 4; the v3 layout
  // never contained that value, so the v3 reader must refuse it instead
  // of misparsing the payload.
  std::vector<u8> buf;
  serialize_journal_entry(buf, errno_entry(), kJournalVersionV3);
  size_t pos = 0;
  EXPECT_FALSE(deserialize_journal_entry(buf, pos, kJournalVersionV3));
}

TEST(JournalErrnoSerialization, V4AcceptsErrnoKindByte) {
  std::vector<u8> buf;
  serialize_journal_entry(buf, errno_entry(), kJournalVersion);
  size_t pos = 0;
  EXPECT_TRUE(deserialize_journal_entry(buf, pos, kJournalVersion));
}

TEST(JournalErrnoSerialization, CorruptContainmentRejected) {
  std::vector<u8> buf;
  serialize_journal_entry(buf, errno_entry(), kJournalVersion);
  // The containment byte sits third from the end (before two flag bytes).
  buf[buf.size() - 3] = 0x7F;
  size_t pos = 0;
  EXPECT_FALSE(deserialize_journal_entry(buf, pos, kJournalVersion));
}

TEST(JournalErrnoSerialization, EveryTruncationReturnsNullopt) {
  std::vector<u8> buf;
  serialize_journal_entry(buf, errno_entry(), kJournalVersion);
  for (size_t len = 0; len < buf.size(); ++len) {
    std::vector<u8> cut(buf.begin(), buf.begin() + static_cast<long>(len));
    size_t pos = 0;
    EXPECT_FALSE(deserialize_journal_entry(cut, pos).has_value())
        << "prefix length " << len;
  }
}

class ErrnoJournalFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_.arch = isa::Arch::kCisca;
    spec_.kind = CampaignKind::kErrno;
    spec_.injections = 6;
    spec_.seed = 7;
    std::string bad;
    spec_.errno_model.syscalls = *errnoinj::parse_syscall_list("read,write",
                                                               &bad);
    plan_ = build_campaign_plan(spec_);
    path_ = tmp_path(
        "kfi_journal_errno_test_" +
        std::to_string(::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->line()) +
        ".kfij");
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  CampaignSpec spec_;
  CampaignPlan plan_;
  std::string path_;
};

TEST_F(ErrnoJournalFileTest, CreateAppendResumeCarriesCascade) {
  {
    InjectionJournal j = InjectionJournal::create(path_, plan_);
    EXPECT_EQ(j.version(), kJournalVersion);
    JournalEntry e = errno_entry();
    e.index = 1;
    j.append(e);
  }
  InjectionJournal j = InjectionJournal::resume(path_, plan_);
  EXPECT_EQ(j.version(), kJournalVersion);
  ASSERT_EQ(j.recovered().size(), 1u);
  const InjectionRecord& r = j.recovered()[0].record;
  ASSERT_TRUE(r.cascade_valid);
  EXPECT_EQ(r.cascade.cascade_length, 9u);
  EXPECT_EQ(r.cascade.containment, errnoinj::CascadeClass::kPropagated);
}

TEST_F(ErrnoJournalFileTest, ResumeRejectsForeignErrnoModel) {
  { InjectionJournal::create(path_, plan_); }
  CampaignSpec other = spec_;
  other.errno_model.trigger = errnoinj::ErrnoTrigger::kRate;
  other.errno_model.rate = 2.0;
  other.errno_model.nth = errnoinj::ErrnoModel::kNthDraw;
  const CampaignPlan other_plan = build_campaign_plan(other);
  // The plan fingerprint already differs (it mixes the errno model), so
  // the refusal comes from the first header check either way; assert the
  // typed error, not its exact wording.
  EXPECT_THROW(InjectionJournal::resume(path_, other_plan), JournalError);
}

TEST_F(ErrnoJournalFileTest, ForeignErrnoFingerprintAloneIsRefused) {
  // Fabricate a header whose plan and fault-model fingerprints match but
  // whose errno-model fingerprint does not: the errno check must fire.
  errnoinj::ErrnoModel other = spec_.errno_model;
  other.value = errnoinj::ErrnoValue::kDrawnNegative;
  std::vector<u8> h;
  const auto put32 = [&h](u32 v) {
    h.push_back(static_cast<u8>(v >> 24));
    h.push_back(static_cast<u8>(v >> 16));
    h.push_back(static_cast<u8>(v >> 8));
    h.push_back(static_cast<u8>(v));
  };
  const auto put64 = [&put32](u64 v) {
    put32(static_cast<u32>(v >> 32));
    put32(static_cast<u32>(v));
  };
  put32(0x4B46494A);  // "KFIJ"
  put32(kJournalVersion);
  put64(plan_fingerprint(plan_));
  put64(fault_model_fingerprint(plan_.spec.model));
  put64(errnoinj::errno_model_fingerprint(other));
  put32(static_cast<u32>(plan_.targets.size()));
  {
    std::ofstream f(path_, std::ios::binary | std::ios::trunc);
    f.write(reinterpret_cast<const char*>(h.data()),
            static_cast<long>(h.size()));
  }
  try {
    InjectionJournal::resume(path_, plan_);
    FAIL() << "accepted a journal with a foreign errno-model fingerprint";
  } catch (const JournalError& e) {
    EXPECT_NE(std::string(e.what()).find("errno model"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace kfi::inject
