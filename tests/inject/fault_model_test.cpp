// FaultModel contract: the default model is recognised as the paper's
// legacy single-bit single-shot model, out-of-range or mismatched knobs
// throw typed FaultModelError, and the fingerprint distinguishes every
// knob that changes what a journal means.
#include <gtest/gtest.h>

#include <set>

#include "inject/fault_model.hpp"
#include "inject/record.hpp"

namespace kfi::inject {
namespace {

TEST(FaultModelTest, DefaultIsLegacyAndValidForEveryKind) {
  const FaultModel m;
  EXPECT_TRUE(m.is_legacy());
  EXPECT_EQ(m.flips_per_event(), 1u);
  for (const CampaignKind kind :
       {CampaignKind::kStack, CampaignKind::kRegister, CampaignKind::kData,
        CampaignKind::kCode}) {
    EXPECT_NO_THROW(m.validate(kind));
  }
}

TEST(FaultModelTest, NonDefaultShapesAreNotLegacy) {
  FaultModel multi;
  multi.shape = FaultShape::kMultiBit;
  multi.bits = 2;
  EXPECT_FALSE(multi.is_legacy());
  EXPECT_EQ(multi.flips_per_event(), 2u);

  FaultModel burst;
  burst.shape = FaultShape::kBurst;
  burst.burst_span = 5;
  EXPECT_FALSE(burst.is_legacy());
  EXPECT_EQ(burst.flips_per_event(), 5u);

  FaultModel rate;
  rate.trigger = FaultTrigger::kRate;
  rate.rate = 2.0;
  EXPECT_FALSE(rate.is_legacy());
  EXPECT_EQ(rate.flips_per_event(), 1u);

  // Opclass targeting changes where faults land, not how many bits flip.
  FaultModel opc;
  opc.shape = FaultShape::kOpclass;
  EXPECT_FALSE(opc.is_legacy());
  EXPECT_EQ(opc.flips_per_event(), 1u);
}

TEST(FaultModelTest, ValidateRejectsOutOfRangeKnobs) {
  FaultModel m;
  m.shape = FaultShape::kMultiBit;
  m.bits = 0;
  EXPECT_THROW(m.validate(CampaignKind::kData), FaultModelError);
  m.bits = 33;
  EXPECT_THROW(m.validate(CampaignKind::kData), FaultModelError);
  m.bits = 32;
  EXPECT_NO_THROW(m.validate(CampaignKind::kData));

  FaultModel b;
  b.shape = FaultShape::kBurst;
  b.burst_span = 1;
  EXPECT_THROW(b.validate(CampaignKind::kData), FaultModelError);
  b.burst_span = 33;
  EXPECT_THROW(b.validate(CampaignKind::kData), FaultModelError);
  b.burst_span = 2;
  EXPECT_NO_THROW(b.validate(CampaignKind::kData));
}

TEST(FaultModelTest, ValidateRejectsInconsistentCombinations) {
  // --bits without the multi-bit shape is a contradiction, not a default.
  FaultModel m;
  m.bits = 4;
  EXPECT_THROW(m.validate(CampaignKind::kData), FaultModelError);

  // Opclass targeting only makes sense when instructions are the target.
  FaultModel opc;
  opc.shape = FaultShape::kOpclass;
  EXPECT_NO_THROW(opc.validate(CampaignKind::kCode));
  EXPECT_THROW(opc.validate(CampaignKind::kData), FaultModelError);
  EXPECT_THROW(opc.validate(CampaignKind::kStack), FaultModelError);
  EXPECT_THROW(opc.validate(CampaignKind::kRegister), FaultModelError);

  // A rate needs the rate trigger and must be positive and bounded.
  FaultModel r;
  r.rate = 1.0;
  EXPECT_THROW(r.validate(CampaignKind::kData), FaultModelError);
  r.trigger = FaultTrigger::kRate;
  EXPECT_NO_THROW(r.validate(CampaignKind::kData));
  r.rate = 0.0;
  EXPECT_THROW(r.validate(CampaignKind::kData), FaultModelError);
  r.rate = -3.0;
  EXPECT_THROW(r.validate(CampaignKind::kData), FaultModelError);
  r.rate = 5000.0;
  EXPECT_THROW(r.validate(CampaignKind::kData), FaultModelError);
}

TEST(FaultModelTest, NameDescribesTheKnobs) {
  FaultModel m;
  EXPECT_EQ(m.name(), "single-bit");
  m.shape = FaultShape::kMultiBit;
  m.bits = 4;
  EXPECT_EQ(m.name(), "multi-bit k=4");
  m.shape = FaultShape::kBurst;
  m.bits = 1;
  m.burst_span = 8;
  EXPECT_EQ(m.name(), "burst span=8");
  m.shape = FaultShape::kOpclass;
  m.opclass = isa::OpClass::kBranch;
  EXPECT_EQ(m.name(), "opclass=branch");
  m.shape = FaultShape::kSingleBit;
  m.trigger = FaultTrigger::kRate;
  m.rate = 2.0;
  EXPECT_EQ(m.name(), "single-bit rate=2/run");
}

TEST(FaultModelTest, FingerprintSeparatesEveryKnob) {
  // Each knob change must move the fingerprint: a resume under a model
  // that differs in any dimension has to be refused.
  std::set<u64> prints;
  FaultModel m;
  prints.insert(fault_model_fingerprint(m));
  m.shape = FaultShape::kMultiBit;
  m.bits = 2;
  prints.insert(fault_model_fingerprint(m));
  m.bits = 4;
  prints.insert(fault_model_fingerprint(m));
  m.shape = FaultShape::kBurst;
  m.bits = 1;
  prints.insert(fault_model_fingerprint(m));
  m.burst_span = 6;
  prints.insert(fault_model_fingerprint(m));
  m = FaultModel{};
  m.trigger = FaultTrigger::kRate;
  m.rate = 1.0;
  prints.insert(fault_model_fingerprint(m));
  m.rate = 2.0;
  prints.insert(fault_model_fingerprint(m));
  m = FaultModel{};
  m.shape = FaultShape::kOpclass;
  m.opclass = isa::OpClass::kAlu;
  prints.insert(fault_model_fingerprint(m));
  m.opclass = isa::OpClass::kLoadStore;
  prints.insert(fault_model_fingerprint(m));
  EXPECT_EQ(prints.size(), 9u);

  // And it is a pure function of the knobs.
  EXPECT_EQ(fault_model_fingerprint(FaultModel{}),
            fault_model_fingerprint(FaultModel{}));
}

}  // namespace
}  // namespace kfi::inject
