// Tests for the UDP-like crash-data channel, the data-deposit
// serialization, and the remote collector.
#include <gtest/gtest.h>

#include "inject/channel.hpp"

namespace kfi::inject {
namespace {

kernel::CrashReport sample_report() {
  kernel::CrashReport r;
  r.cause = kernel::CrashCause::kBadPaging;
  r.pc = 0xC0101234;
  r.addr = 0x170FC2A5;  // the paper's Figure 7 crash address
  r.has_addr = true;
  r.cycles_to_crash = 13116444;  // the paper's Figure 7 latency
  r.detail = "page-fault";
  return r;
}

TEST(DataDepositTest, SerializeParseRoundTrip) {
  const Packet p = DataDeposit::serialize(42, sample_report());
  const auto parsed = DataDeposit::parse(p);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->sequence, 42u);
  EXPECT_EQ(parsed->report.cause, kernel::CrashCause::kBadPaging);
  EXPECT_EQ(parsed->report.pc, 0xC0101234u);
  EXPECT_EQ(parsed->report.addr, 0x170FC2A5u);
  EXPECT_TRUE(parsed->report.has_addr);
  EXPECT_EQ(parsed->report.cycles_to_crash, 13116444u);
  EXPECT_EQ(parsed->report.detail, "page-fault");
}

TEST(DataDepositTest, RejectsTruncatedAndCorruptPackets) {
  Packet p = DataDeposit::serialize(1, sample_report());
  Packet truncated{std::vector<u8>(p.bytes.begin(), p.bytes.begin() + 10)};
  EXPECT_FALSE(DataDeposit::parse(truncated).has_value());
  Packet bad_magic = p;
  bad_magic.bytes[0] ^= 0xFF;
  EXPECT_FALSE(DataDeposit::parse(bad_magic).has_value());
  Packet bad_cause = p;
  bad_cause.bytes[8] = 0xFF;  // cause field out of range
  EXPECT_FALSE(DataDeposit::parse(bad_cause).has_value());
}

TEST(UdpChannelTest, LosslessChannelDeliversInOrder) {
  UdpChannel ch(0.0, 1);
  for (u32 i = 0; i < 5; ++i) {
    EXPECT_TRUE(ch.send(DataDeposit::serialize(i, sample_report())));
  }
  for (u32 i = 0; i < 5; ++i) {
    const auto p = ch.receive();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(DataDeposit::parse(*p)->sequence, i);
  }
  EXPECT_FALSE(ch.receive().has_value());
}

TEST(UdpChannelTest, LossyChannelDropsApproximatelyAtRate) {
  UdpChannel ch(0.25, 7);
  u32 delivered = 0;
  for (u32 i = 0; i < 4000; ++i) {
    if (ch.send(DataDeposit::serialize(i, sample_report()))) ++delivered;
  }
  EXPECT_EQ(ch.sent(), 4000u);
  EXPECT_EQ(ch.dropped(), 4000u - delivered);
  EXPECT_NEAR(static_cast<double>(ch.dropped()) / 4000.0, 0.25, 0.03);
}

TEST(UdpChannelTest, AlwaysLossyDropsEverything) {
  UdpChannel ch(1.0, 3);
  EXPECT_FALSE(ch.send(DataDeposit::serialize(0, sample_report())));
  EXPECT_FALSE(ch.receive().has_value());
}

TEST(CrashCollectorTest, IndexesBySequenceAndIgnoresDuplicates) {
  UdpChannel ch(0.0, 1);
  CrashCollector collector;
  ch.send(DataDeposit::serialize(10, sample_report()));
  kernel::CrashReport other = sample_report();
  other.cause = kernel::CrashCause::kStackOverflow;
  ch.send(DataDeposit::serialize(11, other));
  ch.send(DataDeposit::serialize(10, other));  // duplicate sequence
  collector.poll(ch);
  EXPECT_EQ(collector.count(), 2u);
  EXPECT_TRUE(collector.has(10));
  EXPECT_TRUE(collector.has(11));
  EXPECT_FALSE(collector.has(12));
  // First arrival wins for a duplicated sequence.
  EXPECT_EQ(collector.get(10).cause, kernel::CrashCause::kBadPaging);
  EXPECT_EQ(collector.get(11).cause, kernel::CrashCause::kStackOverflow);
}

TEST(UdpChannelTest, BeginRunMakesLossHistoryIndependent) {
  // The campaign engine's determinism hinge: after begin_run(seed), the
  // next send's drop decision depends only on (channel seed, run seed) —
  // not on how many datagrams the channel carried before.  Two replicas
  // with different histories must agree run by run.
  UdpChannel fresh(0.5, 9);
  UdpChannel busy(0.5, 9);
  for (u32 i = 0; i < 100; ++i) {
    busy.send(DataDeposit::serialize(i, sample_report()));  // skew history
  }
  for (u64 run_seed = 1; run_seed <= 50; ++run_seed) {
    fresh.begin_run(run_seed);
    busy.begin_run(run_seed);
    EXPECT_EQ(fresh.send(DataDeposit::serialize(0, sample_report())),
              busy.send(DataDeposit::serialize(0, sample_report())))
        << "run seed " << run_seed;
  }
  // Different run seeds produce both outcomes at loss 0.5.
  u32 delivered = 0;
  for (u64 run_seed = 0; run_seed < 64; ++run_seed) {
    fresh.begin_run(run_seed);
    if (fresh.send(DataDeposit::serialize(0, sample_report()))) ++delivered;
  }
  EXPECT_GT(delivered, 0u);
  EXPECT_LT(delivered, 64u);
}

TEST(CrashCollectorTest, LostDatagramNeverArrives) {
  // The Tables 5/6 "Hang/Unknown Crash" mechanism: a dropped crash dump
  // means the crash stays unknown to the control host.
  UdpChannel ch(1.0, 5);
  CrashCollector collector;
  ch.send(DataDeposit::serialize(1, sample_report()));
  collector.poll(ch);
  EXPECT_FALSE(collector.has(1));
}

}  // namespace
}  // namespace kfi::inject
