// Tests for the UDP-like crash-data channel, the data-deposit
// serialization, and the remote collector.
#include <gtest/gtest.h>

#include <random>
#include <string>

#include "common/error.hpp"
#include "inject/channel.hpp"

namespace kfi::inject {
namespace {

kernel::CrashReport sample_report() {
  kernel::CrashReport r;
  r.cause = kernel::CrashCause::kBadPaging;
  r.pc = 0xC0101234;
  r.addr = 0x170FC2A5;  // the paper's Figure 7 crash address
  r.has_addr = true;
  r.cycles_to_crash = 13116444;  // the paper's Figure 7 latency
  r.detail = "page-fault";
  return r;
}

TEST(DataDepositTest, SerializeParseRoundTrip) {
  const Packet p = DataDeposit::serialize(42, sample_report());
  const auto parsed = DataDeposit::parse(p);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->sequence, 42u);
  EXPECT_EQ(parsed->report.cause, kernel::CrashCause::kBadPaging);
  EXPECT_EQ(parsed->report.pc, 0xC0101234u);
  EXPECT_EQ(parsed->report.addr, 0x170FC2A5u);
  EXPECT_TRUE(parsed->report.has_addr);
  EXPECT_EQ(parsed->report.cycles_to_crash, 13116444u);
  EXPECT_EQ(parsed->report.detail, "page-fault");
}

TEST(DataDepositTest, RejectsTruncatedAndCorruptPackets) {
  Packet p = DataDeposit::serialize(1, sample_report());
  Packet truncated{std::vector<u8>(p.bytes.begin(), p.bytes.begin() + 10)};
  EXPECT_FALSE(DataDeposit::parse(truncated).has_value());
  Packet bad_magic = p;
  bad_magic.bytes[0] ^= 0xFF;
  EXPECT_FALSE(DataDeposit::parse(bad_magic).has_value());
  Packet bad_cause = p;
  bad_cause.bytes[8] = 0xFF;  // cause field out of range
  EXPECT_FALSE(DataDeposit::parse(bad_cause).has_value());
}

TEST(UdpChannelTest, LosslessChannelDeliversInOrder) {
  UdpChannel ch(0.0, 1);
  for (u32 i = 0; i < 5; ++i) {
    EXPECT_TRUE(ch.send(DataDeposit::serialize(i, sample_report())));
  }
  for (u32 i = 0; i < 5; ++i) {
    const auto p = ch.receive();
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(DataDeposit::parse(*p)->sequence, i);
  }
  EXPECT_FALSE(ch.receive().has_value());
}

TEST(UdpChannelTest, LossyChannelDropsApproximatelyAtRate) {
  UdpChannel ch(0.25, 7);
  u32 delivered = 0;
  for (u32 i = 0; i < 4000; ++i) {
    if (ch.send(DataDeposit::serialize(i, sample_report()))) ++delivered;
  }
  EXPECT_EQ(ch.sent(), 4000u);
  EXPECT_EQ(ch.dropped(), 4000u - delivered);
  EXPECT_NEAR(static_cast<double>(ch.dropped()) / 4000.0, 0.25, 0.03);
}

TEST(UdpChannelTest, AlwaysLossyDropsEverything) {
  UdpChannel ch(1.0, 3);
  EXPECT_FALSE(ch.send(DataDeposit::serialize(0, sample_report())));
  EXPECT_FALSE(ch.receive().has_value());
}

TEST(CrashCollectorTest, IndexesBySequenceAndIgnoresDuplicates) {
  UdpChannel ch(0.0, 1);
  CrashCollector collector;
  ch.send(DataDeposit::serialize(10, sample_report()));
  kernel::CrashReport other = sample_report();
  other.cause = kernel::CrashCause::kStackOverflow;
  ch.send(DataDeposit::serialize(11, other));
  ch.send(DataDeposit::serialize(10, other));  // duplicate sequence
  collector.poll(ch);
  EXPECT_EQ(collector.count(), 2u);
  EXPECT_TRUE(collector.has(10));
  EXPECT_TRUE(collector.has(11));
  EXPECT_FALSE(collector.has(12));
  // First arrival wins for a duplicated sequence.
  EXPECT_EQ(collector.get(10).cause, kernel::CrashCause::kBadPaging);
  EXPECT_EQ(collector.get(11).cause, kernel::CrashCause::kStackOverflow);
}

TEST(UdpChannelTest, BeginRunMakesLossHistoryIndependent) {
  // The campaign engine's determinism hinge: after begin_run(seed), the
  // next send's drop decision depends only on (channel seed, run seed) —
  // not on how many datagrams the channel carried before.  Two replicas
  // with different histories must agree run by run.
  UdpChannel fresh(0.5, 9);
  UdpChannel busy(0.5, 9);
  for (u32 i = 0; i < 100; ++i) {
    busy.send(DataDeposit::serialize(i, sample_report()));  // skew history
  }
  for (u64 run_seed = 1; run_seed <= 50; ++run_seed) {
    fresh.begin_run(run_seed);
    busy.begin_run(run_seed);
    EXPECT_EQ(fresh.send(DataDeposit::serialize(0, sample_report())),
              busy.send(DataDeposit::serialize(0, sample_report())))
        << "run seed " << run_seed;
  }
  // Different run seeds produce both outcomes at loss 0.5.
  u32 delivered = 0;
  for (u64 run_seed = 0; run_seed < 64; ++run_seed) {
    fresh.begin_run(run_seed);
    if (fresh.send(DataDeposit::serialize(0, sample_report()))) ++delivered;
  }
  EXPECT_GT(delivered, 0u);
  EXPECT_LT(delivered, 64u);
}

TEST(CrashCollectorTest, LostDatagramNeverArrives) {
  // The Tables 5/6 "Hang/Unknown Crash" mechanism: a dropped crash dump
  // means the crash stays unknown to the control host.
  UdpChannel ch(1.0, 5);
  CrashCollector collector;
  ch.send(DataDeposit::serialize(1, sample_report()));
  collector.poll(ch);
  EXPECT_FALSE(collector.has(1));
}

TEST(CrashCollectorTest, FindReturnsNullForMissingSequence) {
  UdpChannel ch(0.0, 1);
  CrashCollector collector;
  ch.send(DataDeposit::serialize(7, sample_report()));
  collector.poll(ch);
  ASSERT_NE(collector.find(7), nullptr);
  EXPECT_EQ(collector.find(7)->cause, kernel::CrashCause::kBadPaging);
  EXPECT_EQ(collector.find(8), nullptr);
}

TEST(CrashCollectorTest, GetThrowsTypedErrorForMissingSequence) {
  CrashCollector collector;
  EXPECT_THROW(collector.get(99), Error);
  try {
    collector.get(99);
    FAIL() << "expected kfi::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("99"), std::string::npos)
        << "message should name the missing sequence: " << e.what();
  }
}

TEST(DataDepositTest, EveryTruncationLengthIsRejectedSafely) {
  // The fixed header alone is 36 bytes; the historical bug accepted
  // 32..35-byte packets and read past the end.  Walk every prefix of a
  // real datagram (detail string included): each must parse to nullopt
  // or — once the full detail fits — to a valid deposit, never OOB (the
  // ASan CI job turns an overread into a test failure).
  const Packet full = DataDeposit::serialize(3, sample_report());
  for (size_t len = 0; len < full.bytes.size(); ++len) {
    Packet cut{std::vector<u8>(full.bytes.begin(),
                               full.bytes.begin() + static_cast<long>(len))};
    EXPECT_FALSE(DataDeposit::parse(cut).has_value()) << "prefix " << len;
  }
  EXPECT_TRUE(DataDeposit::parse(full).has_value());
}

TEST(DataDepositTest, ZeroLengthAndHeaderOnlyPackets) {
  EXPECT_FALSE(DataDeposit::parse(Packet{}).has_value());
  // A report with no detail string serializes to exactly the 36-byte
  // header; that must parse, and 35 bytes must not.
  kernel::CrashReport bare = sample_report();
  bare.detail.clear();
  const Packet p = DataDeposit::serialize(0, bare);
  ASSERT_EQ(p.bytes.size(), 36u);
  EXPECT_TRUE(DataDeposit::parse(p).has_value());
  Packet short35{std::vector<u8>(p.bytes.begin(), p.bytes.begin() + 35)};
  EXPECT_FALSE(DataDeposit::parse(short35).has_value());
}

TEST(DataDepositTest, SeededBitFlipFuzzNeverReadsOutOfBounds) {
  // Deterministic fuzz: flip one bit at a time across several reports and
  // parse.  Every result must be nullopt or a self-consistent deposit;
  // the invariant under test is memory safety, not acceptance.
  std::mt19937_64 rng(0xF1A5);
  for (u32 round = 0; round < 64; ++round) {
    kernel::CrashReport r = sample_report();
    r.detail.assign(static_cast<size_t>(rng() % 40), 'x');
    r.cycles_to_crash = rng();
    Packet p = DataDeposit::serialize(static_cast<u32>(rng()), r);
    const size_t bit = static_cast<size_t>(rng() % (p.bytes.size() * 8));
    p.bytes[bit / 8] ^= static_cast<u8>(1u << (bit % 8));
    const auto parsed = DataDeposit::parse(p);
    if (parsed.has_value()) {
      EXPECT_LT(static_cast<u8>(parsed->report.cause),
                static_cast<u8>(kernel::CrashCause::kNumCauses));
    }
    // Also parse a random truncation of the corrupted packet.
    Packet cut{std::vector<u8>(
        p.bytes.begin(),
        p.bytes.begin() + static_cast<long>(rng() % (p.bytes.size() + 1)))};
    (void)DataDeposit::parse(cut);
  }
}

}  // namespace
}  // namespace kfi::inject
