// Engine index slices and deterministic retry backoff — the two engine
// seams the multi-process fabric stands on.
//
// A slice restricts one engine run to a sorted unique subset of the
// plan's indices (a fabric worker's shard); records still land at their
// plan index, so two complementary slice runs merge into exactly the
// serial result.  Retry backoff replaces the old immediate retry with a
// capped exponential wait whose jitter comes from a per-worker Rng
// seeded by (plan seed, worker id) — wall-clock only, never part of the
// determinism contract.
#include <gtest/gtest.h>

#include <stdexcept>

#include "inject/campaign.hpp"
#include "inject/engine.hpp"
#include "inject/plan.hpp"

namespace kfi::inject {
namespace {

CampaignSpec small_spec(isa::Arch arch, u32 injections = 12) {
  CampaignSpec spec;
  spec.arch = arch;
  spec.kind = CampaignKind::kData;
  spec.injections = injections;
  spec.seed = 77;
  return spec;
}

TEST(EngineSlice, SliceRunsExactlyItsIndices) {
  const CampaignPlan plan =
      build_campaign_plan(small_spec(isa::Arch::kRiscf));
  const std::vector<u32> slice = {1, 4, 5, 9};
  RunControl ctl;
  ctl.indices = &slice;
  const CampaignResult result = CampaignEngine(1).run(plan, {}, ctl);
  ASSERT_EQ(result.done_mask.size(), plan.targets.size());
  for (u32 i = 0; i < result.done_mask.size(); ++i) {
    const bool in_slice =
        std::find(slice.begin(), slice.end(), i) != slice.end();
    EXPECT_EQ(result.done_mask[i] != 0, in_slice) << "index " << i;
  }
  // The slice is the whole assignment: completing it is not an
  // interruption.
  EXPECT_FALSE(result.interrupted);
  EXPECT_EQ(result.executed(), slice.size());
}

TEST(EngineSlice, ComplementarySlicesReproduceTheSerialRecords) {
  const CampaignPlan plan =
      build_campaign_plan(small_spec(isa::Arch::kCisca));
  const CampaignResult serial = CampaignEngine(1).run(plan);

  std::vector<u32> left, right;
  for (u32 i = 0; i < plan.targets.size(); ++i) {
    (i < plan.targets.size() / 2 ? left : right).push_back(i);
  }
  RunControl ctl_l, ctl_r;
  ctl_l.indices = &left;
  ctl_r.indices = &right;
  const CampaignResult a = CampaignEngine(2).run(plan, {}, ctl_l);
  const CampaignResult b = CampaignEngine(2).run(plan, {}, ctl_r);

  // Stitch the two slice results together by plan index and compare the
  // merged campaign to the serial reference through the fingerprint.
  CampaignResult merged = serial;  // spec/calibration blocks are plan-owned
  merged.records.assign(plan.targets.size(), {});
  merged.done_mask.assign(plan.targets.size(), 0);
  merged.reboots = a.reboots + b.reboots;
  merged.datagrams_sent = a.datagrams_sent + b.datagrams_sent;
  merged.datagrams_dropped = a.datagrams_dropped + b.datagrams_dropped;
  for (const u32 i : left) {
    merged.records[i] = a.records[i];
    merged.done_mask[i] = 1;
  }
  for (const u32 i : right) {
    merged.records[i] = b.records[i];
    merged.done_mask[i] = 1;
  }
  EXPECT_EQ(result_fingerprint(merged), result_fingerprint(serial));
}

TEST(EngineSlice, EmptySliceCompletesImmediately) {
  const CampaignPlan plan =
      build_campaign_plan(small_spec(isa::Arch::kRiscf, 6));
  const std::vector<u32> none;
  RunControl ctl;
  ctl.indices = &none;
  const CampaignResult result = CampaignEngine(1).run(plan, {}, ctl);
  EXPECT_EQ(result.executed(), 0u);
  EXPECT_FALSE(result.interrupted);
}

TEST(EngineSlice, RejectsUnsortedAndOutOfRangeSlices) {
  const CampaignPlan plan =
      build_campaign_plan(small_spec(isa::Arch::kRiscf, 6));
  const std::vector<u32> unsorted = {3, 1};
  const std::vector<u32> duplicate = {2, 2};
  const std::vector<u32> oob = {0, 99};
  for (const auto* bad : {&unsorted, &duplicate, &oob}) {
    RunControl ctl;
    ctl.indices = bad;
    EXPECT_THROW(CampaignEngine(1).run(plan, {}, ctl), Error);
  }
}

TEST(RetryBackoff, WaitsAreCountedAndReportedPerWorker) {
  const CampaignPlan plan =
      build_campaign_plan(small_spec(isa::Arch::kRiscf, 8));
  RunControl ctl;
  ctl.retries = 1;
  ctl.retry_backoff_base = 0.001;  // keep the test fast
  ctl.retry_backoff_cap = 0.002;
  ctl.harness_fault_hook = [](u32 index, u32 attempt) {
    if (index % 3 == 0 && attempt == 0) {
      throw std::runtime_error("transient harness fault");
    }
  };
  const CampaignResult result = CampaignEngine(2).run(plan, {}, ctl);
  EXPECT_GT(result.harness_retries, 0u);
  // Every retry was preceded by exactly one backoff wait.
  EXPECT_EQ(result.retry_backoff_waits, result.harness_retries);
  EXPECT_GT(result.retry_backoff_seconds, 0.0);
  u64 per_worker = 0;
  for (const u64 w : result.worker_backoff_waits) per_worker += w;
  EXPECT_EQ(per_worker, result.retry_backoff_waits);
  EXPECT_EQ(result.quarantined, 0u);  // retries succeeded
}

TEST(RetryBackoff, ZeroBaseRestoresImmediateRetry) {
  const CampaignPlan plan =
      build_campaign_plan(small_spec(isa::Arch::kCisca, 6));
  RunControl ctl;
  ctl.retries = 1;
  ctl.retry_backoff_base = 0.0;
  ctl.harness_fault_hook = [](u32 index, u32 attempt) {
    if (index == 2 && attempt == 0) {
      throw std::runtime_error("transient harness fault");
    }
  };
  const CampaignResult result = CampaignEngine(1).run(plan, {}, ctl);
  EXPECT_EQ(result.harness_retries, 1u);
  EXPECT_EQ(result.retry_backoff_waits, 0u);
  EXPECT_EQ(result.retry_backoff_seconds, 0.0);
}

TEST(RetryBackoff, BackoffNeverChangesTheResult) {
  const CampaignPlan plan =
      build_campaign_plan(small_spec(isa::Arch::kRiscf, 8));
  auto run_with = [&plan](double base) {
    RunControl ctl;
    ctl.retries = 2;
    ctl.retry_backoff_base = base;
    ctl.retry_backoff_cap = 0.002;
    ctl.harness_fault_hook = [](u32 index, u32 attempt) {
      if (index % 2 == 0 && attempt < 2) {
        throw std::runtime_error("transient harness fault");
      }
    };
    return CampaignEngine(2).run(plan, {}, ctl);
  };
  const CampaignResult with = run_with(0.001);
  const CampaignResult without = run_with(0.0);
  EXPECT_EQ(result_fingerprint(with), result_fingerprint(without));
  EXPECT_GT(with.retry_backoff_waits, 0u);
  EXPECT_EQ(without.retry_backoff_waits, 0u);
}

}  // namespace
}  // namespace kfi::inject
