// Unit coverage for the campaign plan/engine layers: plan freezing,
// jobs-knob resolution, throughput observability, and the shared
// calibration helpers used by both run_campaign and run_single_injection.
#include <gtest/gtest.h>

#include "inject/campaign.hpp"

namespace kfi::inject {
namespace {

CampaignSpec tiny_spec(isa::Arch arch, CampaignKind kind, u32 n) {
  CampaignSpec spec;
  spec.arch = arch;
  spec.kind = kind;
  spec.injections = n;
  spec.seed = 42;
  return spec;
}

TEST(CampaignPlanTest, FreezesEverythingTheWorkersNeed) {
  const CampaignPlan plan =
      build_campaign_plan(tiny_spec(isa::Arch::kCisca, CampaignKind::kCode, 30));
  ASSERT_NE(plan.image, nullptr);
  EXPECT_EQ(plan.image->arch, isa::Arch::kCisca);
  EXPECT_EQ(plan.targets.size(), 30u);
  EXPECT_EQ(plan.run_seeds.size(), 30u);
  EXPECT_GT(plan.nominal_cycles, 1'000'000u);
  EXPECT_GT(plan.budget_cycles, plan.nominal_cycles);
  EXPECT_GT(plan.kernel_fraction, 0.0);
  EXPECT_LT(plan.kernel_fraction, 1.0);
  EXPECT_FALSE(plan.hot_functions.empty());
  EXPECT_GE(plan.plan_seconds, 0.0);
  // Pre-drawn seeds are (overwhelmingly) distinct.
  for (size_t i = 1; i < plan.run_seeds.size(); ++i) {
    EXPECT_NE(plan.run_seeds[i], plan.run_seeds[0]);
  }
}

TEST(CampaignPlanTest, PlanIsReproducible) {
  const auto spec = tiny_spec(isa::Arch::kRiscf, CampaignKind::kStack, 20);
  const CampaignPlan a = build_campaign_plan(spec);
  const CampaignPlan b = build_campaign_plan(spec);
  EXPECT_EQ(a.nominal_cycles, b.nominal_cycles);
  EXPECT_EQ(a.kernel_fraction, b.kernel_fraction);
  EXPECT_EQ(a.budget_cycles, b.budget_cycles);
  EXPECT_EQ(a.run_seeds, b.run_seeds);
  ASSERT_EQ(a.targets.size(), b.targets.size());
  for (size_t i = 0; i < a.targets.size(); ++i) {
    EXPECT_EQ(a.targets[i].site().task, b.targets[i].site().task);
    EXPECT_EQ(a.targets[i].site().bit, b.targets[i].site().bit);
    EXPECT_EQ(a.targets[i].site().depth_frac, b.targets[i].site().depth_frac);
  }
  EXPECT_EQ(a.image->code, b.image->code);
  EXPECT_EQ(a.image->data, b.image->data);
}

TEST(CampaignPlanTest, SingleInjectionUsesTheCampaignKernelFraction) {
  // The satellite fix: run_single_injection must compute kernel_fraction
  // the same way run_campaign does, via the shared helpers.
  const auto spec = tiny_spec(isa::Arch::kCisca, CampaignKind::kRegister, 5);
  const CampaignPlan plan = build_campaign_plan(spec);

  kernel::Machine machine(spec.arch, campaign_machine_options(spec));
  auto wl = workload::make_suite(spec.workload_scale);
  const u64 nominal = calibrate_workload(machine, *wl, spec.seed);
  EXPECT_EQ(nominal, plan.nominal_cycles);
  EXPECT_EQ(calibrated_kernel_fraction(machine, nominal),
            plan.kernel_fraction);
  // Degenerate calibration falls back to the documented default.
  EXPECT_EQ(calibrated_kernel_fraction(machine, 0), 0.15);
}

TEST(CampaignEngineTest, ResolvesJobsKnob) {
  EXPECT_EQ(CampaignEngine::resolve_jobs(1), 1u);
  EXPECT_EQ(CampaignEngine::resolve_jobs(5), 5u);
  EXPECT_GE(CampaignEngine::resolve_jobs(0), 1u);  // hardware concurrency
  EXPECT_EQ(CampaignEngine(3).jobs(), 3u);
}

TEST(CampaignEngineTest, ReportsThroughput) {
  const CampaignPlan plan =
      build_campaign_plan(tiny_spec(isa::Arch::kRiscf, CampaignKind::kData, 10));
  const CampaignResult result = CampaignEngine(2).run(plan);
  EXPECT_EQ(result.records.size(), 10u);
  EXPECT_EQ(result.throughput.jobs, 2u);
  EXPECT_GT(result.throughput.run_seconds, 0.0);
  EXPECT_GE(result.throughput.wall_seconds, result.throughput.run_seconds);
  EXPECT_EQ(result.throughput.plan_seconds, plan.plan_seconds);
  EXPECT_GT(result.throughput.simulated_cycles, 0u);
  EXPECT_GT(result.throughput.injections_per_second(result.records.size()),
            0.0);
  EXPECT_GT(result.throughput.simulated_cycles_per_second(), 0.0);
}

TEST(CampaignEngineTest, MoreWorkersThanTargetsIsClamped) {
  const CampaignPlan plan =
      build_campaign_plan(tiny_spec(isa::Arch::kCisca, CampaignKind::kData, 3));
  const CampaignResult result = CampaignEngine(16).run(plan);
  EXPECT_EQ(result.records.size(), 3u);
  EXPECT_LE(result.throughput.jobs, 3u);
  EXPECT_EQ(result.reboots, 3u);
}

}  // namespace
}  // namespace kfi::inject
