// Target generator tests: pre-generated targets must respect the paper's
// selection rules (profiled hot functions for code, structural data words,
// instruction boundaries, system-register bank bounds) and be
// deterministic per seed.
#include <gtest/gtest.h>

#include <set>

#include "cisca/decode.hpp"
#include "common/counter_map.hpp"
#include "kir/backend.hpp"
#include "inject/target_gen.hpp"
#include "kernel/machine.hpp"
#include "workload/profiler.hpp"
#include "workload/workload.hpp"

namespace kfi::inject {
namespace {

class TargetGenTest : public ::testing::TestWithParam<isa::Arch> {
 protected:
  TargetGenTest() : machine_(GetParam(), kernel::MachineOptions{}) {
    auto wl = workload::make_suite();
    hot_ = workload::profile_hot_functions(machine_, *wl, 0.95, 1);
  }

  TargetGenerator make_gen(u64 seed = 9) {
    return TargetGenerator(machine_.image(), hot_,
                           machine_.cpu().sysregs().count(), seed);
  }

  kernel::Machine machine_;
  std::vector<workload::HotFunction> hot_;
};

TEST_P(TargetGenTest, CodeTargetsLieInsideHotFunctions) {
  auto gen = make_gen();
  for (const auto& t : gen.generate(CampaignKind::kCode, 200)) {
    const auto* fn = machine_.image().function_at(t.code_addr);
    ASSERT_NE(fn, nullptr);
    EXPECT_EQ(fn->name, t.function);
    bool is_hot = false;
    for (const auto& h : hot_) is_hot |= h.name == t.function;
    EXPECT_TRUE(is_hot) << t.function;
    EXPECT_LT(t.code_bit, t.code_insn_len * 8);
  }
}

TEST_P(TargetGenTest, CodeTargetsStartOnInstructionBoundaries) {
  auto gen = make_gen();
  for (const auto& t : gen.generate(CampaignKind::kCode, 100)) {
    if (GetParam() == isa::Arch::kRiscf) {
      EXPECT_EQ(t.code_addr % 4, 0u);
      EXPECT_EQ(t.code_insn_len, 4u);
      continue;
    }
    // cisca: walk the decode chain from the function start; the target
    // must be a boundary.
    const auto* fn = machine_.image().function_at(t.code_addr);
    ASSERT_NE(fn, nullptr);
    Addr pc = fn->addr;
    bool boundary = false;
    while (pc < fn->addr + fn->size) {
      if (pc == t.code_addr) {
        boundary = true;
        break;
      }
      cisca::FetchWindow w;
      w.pc = pc;
      const u32 off = pc - machine_.image().code_base;
      for (u32 k = 0;
           k < cisca::kMaxInsnBytes && off + k < machine_.image().code.size();
           ++k) {
        w.bytes[k] = machine_.image().code[off + k];
        w.valid = static_cast<u8>(k + 1);
      }
      pc += cisca::decode(w).insn.length;
    }
    EXPECT_TRUE(boundary) << std::hex << t.code_addr;
  }
}

TEST_P(TargetGenTest, CodeTargetsAreUsageWeighted) {
  // The hottest function must receive noticeably more targets than a cold
  // one, mirroring the profiling-driven selection.
  auto gen = make_gen();
  CounterMap by_fn;
  for (const auto& t : gen.generate(CampaignKind::kCode, 2000)) {
    by_fn.add(t.function);
  }
  EXPECT_GT(by_fn.fraction(hot_.front().name), 0.15);
}

TEST_P(TargetGenTest, DataTargetsStayInTheFixedWindow) {
  // Uniform sampling over the fixed data window: never a bulk payload
  // array (those live beyond the window); slack hits are allowed (they
  // model never-used data and simply fail to activate).
  auto gen = make_gen();
  for (const auto& t : gen.generate(CampaignKind::kData, 500)) {
    EXPECT_GE(t.data_addr, machine_.image().data_base);
    EXPECT_LT(t.data_addr,
              machine_.image().data_base + kir::kBulkDataOffset);
    const auto* obj = machine_.image().object_at(t.data_addr);
    if (obj != nullptr) {
      EXPECT_TRUE(obj->structural) << obj->name;
    }
    EXPECT_EQ(t.data_addr % 4, 0u);
    EXPECT_LT(t.data_bit, 32u);
  }
}

TEST_P(TargetGenTest, DataTargetsCoverManyObjects) {
  auto gen = make_gen();
  std::set<std::string> names;
  for (const auto& t : gen.generate(CampaignKind::kData, 2000)) {
    const auto* obj = machine_.image().object_at(t.data_addr);
    if (obj != nullptr) names.insert(obj->name);
  }
  EXPECT_GT(names.size(), 10u);
}

TEST_P(TargetGenTest, StackTargetsSpanTasksAndDepths) {
  auto gen = make_gen();
  std::set<u32> tasks;
  double min_frac = 1.0, max_frac = 0.0;
  for (const auto& t : gen.generate(CampaignKind::kStack, 300)) {
    tasks.insert(t.stack_task);
    min_frac = std::min(min_frac, t.stack_depth_frac);
    max_frac = std::max(max_frac, t.stack_depth_frac);
    EXPECT_LT(t.stack_bit, 32u);
    EXPECT_GE(t.inject_at_frac, 0.1);
    EXPECT_LE(t.inject_at_frac, 0.8);
  }
  EXPECT_EQ(tasks.size(), kernel::kNumTasks);
  EXPECT_LT(min_frac, 0.1);
  EXPECT_GT(max_frac, 0.9);
}

TEST_P(TargetGenTest, RegisterTargetsStayInBank) {
  auto gen = make_gen();
  const u32 count = machine_.cpu().sysregs().count();
  std::set<u32> indices;
  for (const auto& t : gen.generate(CampaignKind::kRegister, 400)) {
    EXPECT_LT(t.reg_index, count);
    indices.insert(t.reg_index);
  }
  // A 400-target campaign touches a large share of the bank.
  EXPECT_GT(indices.size(), count / 2);
}

TEST_P(TargetGenTest, DeterministicPerSeed) {
  auto a = make_gen(123).generate(CampaignKind::kCode, 50);
  auto b = make_gen(123).generate(CampaignKind::kCode, 50);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].code_addr, b[i].code_addr);
    EXPECT_EQ(a[i].code_bit, b[i].code_bit);
  }
  auto c = make_gen(124).generate(CampaignKind::kCode, 50);
  bool all_same = true;
  for (size_t i = 0; i < a.size(); ++i) {
    all_same &= a[i].code_addr == c[i].code_addr && a[i].code_bit == c[i].code_bit;
  }
  EXPECT_FALSE(all_same);
}

INSTANTIATE_TEST_SUITE_P(BothArchs, TargetGenTest,
                         ::testing::Values(isa::Arch::kCisca,
                                           isa::Arch::kRiscf),
                         [](const auto& info) {
                           return info.param == isa::Arch::kCisca ? "cisca"
                                                                  : "riscf";
                         });

}  // namespace
}  // namespace kfi::inject
