// Target generator tests: pre-generated targets must respect the paper's
// selection rules (profiled hot functions for code, structural data words,
// instruction boundaries, system-register bank bounds) and be
// deterministic per seed.
#include <gtest/gtest.h>

#include <set>

#include "cisca/decode.hpp"
#include "common/counter_map.hpp"
#include "riscf/insn.hpp"
#include "kir/backend.hpp"
#include "inject/target_gen.hpp"
#include "kernel/machine.hpp"
#include "workload/profiler.hpp"
#include "workload/workload.hpp"

namespace kfi::inject {
namespace {

class TargetGenTest : public ::testing::TestWithParam<isa::Arch> {
 protected:
  TargetGenTest() : machine_(GetParam(), kernel::MachineOptions{}) {
    auto wl = workload::make_suite();
    hot_ = workload::profile_hot_functions(machine_, *wl, 0.95, 1);
  }

  TargetGenerator make_gen(u64 seed = 9) {
    return TargetGenerator(machine_.image(), hot_,
                           machine_.cpu().sysregs().count(), seed);
  }

  kernel::Machine machine_;
  std::vector<workload::HotFunction> hot_;
};

TEST_P(TargetGenTest, CodeTargetsLieInsideHotFunctions) {
  auto gen = make_gen();
  for (const auto& t : gen.generate(CampaignKind::kCode, 200)) {
    const auto* fn = machine_.image().function_at(t.site().addr);
    ASSERT_NE(fn, nullptr);
    EXPECT_EQ(fn->name, t.function);
    bool is_hot = false;
    for (const auto& h : hot_) is_hot |= h.name == t.function;
    EXPECT_TRUE(is_hot) << t.function;
    EXPECT_LT(t.site().bit, t.site().insn_len * 8);
  }
}

TEST_P(TargetGenTest, CodeTargetsStartOnInstructionBoundaries) {
  auto gen = make_gen();
  for (const auto& t : gen.generate(CampaignKind::kCode, 100)) {
    if (GetParam() == isa::Arch::kRiscf) {
      EXPECT_EQ(t.site().addr % 4, 0u);
      EXPECT_EQ(t.site().insn_len, 4u);
      continue;
    }
    // cisca: walk the decode chain from the function start; the target
    // must be a boundary.
    const auto* fn = machine_.image().function_at(t.site().addr);
    ASSERT_NE(fn, nullptr);
    Addr pc = fn->addr;
    bool boundary = false;
    while (pc < fn->addr + fn->size) {
      if (pc == t.site().addr) {
        boundary = true;
        break;
      }
      cisca::FetchWindow w;
      w.pc = pc;
      const u32 off = pc - machine_.image().code_base;
      for (u32 k = 0;
           k < cisca::kMaxInsnBytes && off + k < machine_.image().code.size();
           ++k) {
        w.bytes[k] = machine_.image().code[off + k];
        w.valid = static_cast<u8>(k + 1);
      }
      pc += cisca::decode(w).insn.length;
    }
    EXPECT_TRUE(boundary) << std::hex << t.site().addr;
  }
}

TEST_P(TargetGenTest, CodeTargetsAreUsageWeighted) {
  // The hottest function must receive noticeably more targets than a cold
  // one, mirroring the profiling-driven selection.
  auto gen = make_gen();
  CounterMap by_fn;
  for (const auto& t : gen.generate(CampaignKind::kCode, 2000)) {
    by_fn.add(t.function);
  }
  EXPECT_GT(by_fn.fraction(hot_.front().name), 0.15);
}

TEST_P(TargetGenTest, DataTargetsStayInTheFixedWindow) {
  // Uniform sampling over the fixed data window: never a bulk payload
  // array (those live beyond the window); slack hits are allowed (they
  // model never-used data and simply fail to activate).
  auto gen = make_gen();
  for (const auto& t : gen.generate(CampaignKind::kData, 500)) {
    EXPECT_GE(t.site().addr, machine_.image().data_base);
    EXPECT_LT(t.site().addr,
              machine_.image().data_base + kir::kBulkDataOffset);
    const auto* obj = machine_.image().object_at(t.site().addr);
    if (obj != nullptr) {
      EXPECT_TRUE(obj->structural) << obj->name;
    }
    EXPECT_EQ(t.site().addr % 4, 0u);
    EXPECT_LT(t.site().bit, 32u);
  }
}

TEST_P(TargetGenTest, DataTargetsCoverManyObjects) {
  auto gen = make_gen();
  std::set<std::string> names;
  for (const auto& t : gen.generate(CampaignKind::kData, 2000)) {
    const auto* obj = machine_.image().object_at(t.site().addr);
    if (obj != nullptr) names.insert(obj->name);
  }
  EXPECT_GT(names.size(), 10u);
}

TEST_P(TargetGenTest, StackTargetsSpanTasksAndDepths) {
  auto gen = make_gen();
  std::set<u32> tasks;
  double min_frac = 1.0, max_frac = 0.0;
  for (const auto& t : gen.generate(CampaignKind::kStack, 300)) {
    tasks.insert(t.site().task);
    min_frac = std::min(min_frac, t.site().depth_frac);
    max_frac = std::max(max_frac, t.site().depth_frac);
    EXPECT_LT(t.site().bit, 32u);
    EXPECT_GE(t.inject_at_frac, 0.1);
    EXPECT_LE(t.inject_at_frac, 0.8);
  }
  EXPECT_EQ(tasks.size(), kernel::kNumTasks);
  EXPECT_LT(min_frac, 0.1);
  EXPECT_GT(max_frac, 0.9);
}

TEST_P(TargetGenTest, RegisterTargetsStayInBank) {
  auto gen = make_gen();
  const u32 count = machine_.cpu().sysregs().count();
  std::set<u32> indices;
  for (const auto& t : gen.generate(CampaignKind::kRegister, 400)) {
    EXPECT_LT(t.site().reg_index, count);
    indices.insert(t.site().reg_index);
  }
  // A 400-target campaign touches a large share of the bank.
  EXPECT_GT(indices.size(), count / 2);
}

TEST_P(TargetGenTest, DeterministicPerSeed) {
  auto a = make_gen(123).generate(CampaignKind::kCode, 50);
  auto b = make_gen(123).generate(CampaignKind::kCode, 50);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].site().addr, b[i].site().addr);
    EXPECT_EQ(a[i].site().bit, b[i].site().bit);
  }
  auto c = make_gen(124).generate(CampaignKind::kCode, 50);
  bool all_same = true;
  for (size_t i = 0; i < a.size(); ++i) {
    all_same &= a[i].site().addr == c[i].site().addr &&
                a[i].site().bit == c[i].site().bit;
  }
  EXPECT_FALSE(all_same);
}

TEST_P(TargetGenTest, LegacyModelDrawsOneSitePerTarget) {
  auto gen = make_gen();
  for (const CampaignKind kind :
       {CampaignKind::kStack, CampaignKind::kRegister, CampaignKind::kData,
        CampaignKind::kCode}) {
    for (const auto& t : gen.generate(kind, 50)) {
      EXPECT_EQ(t.sites.size(), 1u);
    }
  }
}

TEST_P(TargetGenTest, MultiBitExpandsToDistinctBitsOfOneUnit) {
  auto gen = make_gen();
  FaultModel m;
  m.shape = FaultShape::kMultiBit;
  m.bits = 4;
  for (const auto& t : gen.generate(CampaignKind::kData, 200, m)) {
    ASSERT_EQ(t.sites.size(), 4u);
    std::set<u32> bits;
    for (const auto& s : t.sites) {
      EXPECT_EQ(s.addr, t.sites[0].addr);  // all bits hit the same word
      EXPECT_LT(s.bit, 32u);
      bits.insert(s.bit);
    }
    EXPECT_EQ(bits.size(), 4u);  // and are pairwise distinct
  }
}

TEST_P(TargetGenTest, MultiBitOnCodeStaysInsideTheInstruction) {
  auto gen = make_gen();
  FaultModel m;
  m.shape = FaultShape::kMultiBit;
  m.bits = 3;
  for (const auto& t : gen.generate(CampaignKind::kCode, 100, m)) {
    ASSERT_EQ(t.sites.size(), 3u);
    for (const auto& s : t.sites) {
      EXPECT_EQ(s.addr, t.sites[0].addr);
      EXPECT_EQ(s.insn_len, t.sites[0].insn_len);
      EXPECT_LT(s.bit, s.insn_len * 8);
    }
  }
}

TEST_P(TargetGenTest, BurstExpandsToAdjacentBits) {
  auto gen = make_gen();
  FaultModel m;
  m.shape = FaultShape::kBurst;
  m.burst_span = 4;
  for (const auto& t : gen.generate(CampaignKind::kData, 200, m)) {
    ASSERT_EQ(t.sites.size(), 4u);
    std::set<u32> bits;
    for (const auto& s : t.sites) {
      EXPECT_EQ(s.addr, t.sites[0].addr);
      EXPECT_LT(s.bit, 32u);
      bits.insert(s.bit);
    }
    ASSERT_EQ(bits.size(), 4u);
    EXPECT_EQ(*bits.rbegin() - *bits.begin(), 3u);  // contiguous span
  }
}

TEST_P(TargetGenTest, OpclassTargetingDrawsOnlyThatClass) {
  auto gen = make_gen();
  FaultModel m;
  m.shape = FaultShape::kOpclass;
  m.opclass = isa::OpClass::kLoadStore;
  for (const auto& t : gen.generate(CampaignKind::kCode, 150, m)) {
    EXPECT_EQ(t.opclass, isa::OpClass::kLoadStore);
    // Cross-check the stamp against an independent decode of the image.
    if (GetParam() == isa::Arch::kRiscf) {
      const u32 off = t.site().addr - machine_.image().code_base;
      const u32 word = (machine_.image().code[off] << 24) |
                       (machine_.image().code[off + 1] << 16) |
                       (machine_.image().code[off + 2] << 8) |
                       machine_.image().code[off + 3];
      EXPECT_EQ(riscf::opclass(riscf::decode(word).op),
                isa::OpClass::kLoadStore);
    } else {
      cisca::FetchWindow w;
      w.pc = t.site().addr;
      const u32 off = t.site().addr - machine_.image().code_base;
      for (u32 k = 0;
           k < cisca::kMaxInsnBytes && off + k < machine_.image().code.size();
           ++k) {
        w.bytes[k] = machine_.image().code[off + k];
        w.valid = static_cast<u8>(k + 1);
      }
      EXPECT_EQ(cisca::opclass(cisca::decode(w).insn.op),
                isa::OpClass::kLoadStore);
    }
  }
}

TEST_P(TargetGenTest, RateTriggerPreDrawsASortedSchedule) {
  auto gen = make_gen();
  FaultModel m;
  m.trigger = FaultTrigger::kRate;
  m.rate = 3.0;
  bool any_multi = false;
  for (const auto& t : gen.generate(CampaignKind::kData, 200, m)) {
    any_multi |= t.sites.size() > 1;
    for (size_t i = 0; i < t.sites.size(); ++i) {
      EXPECT_GE(t.sites[i].at_frac, 0.0);
      EXPECT_LT(t.sites[i].at_frac, 1.0);
      if (i > 0) EXPECT_GE(t.sites[i].at_frac, t.sites[i - 1].at_frac);
    }
  }
  // With lambda=3 per run, multi-event schedules are near-certain.
  EXPECT_TRUE(any_multi);
}

TEST_P(TargetGenTest, ShapedDrawsAreDeterministicPerSeed) {
  FaultModel m;
  m.shape = FaultShape::kMultiBit;
  m.bits = 4;
  m.trigger = FaultTrigger::kRate;
  m.rate = 2.0;
  auto a = make_gen(321).generate(CampaignKind::kData, 50, m);
  auto b = make_gen(321).generate(CampaignKind::kData, 50, m);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].sites.size(), b[i].sites.size());
    for (size_t j = 0; j < a[i].sites.size(); ++j) {
      EXPECT_EQ(a[i].sites[j].addr, b[i].sites[j].addr);
      EXPECT_EQ(a[i].sites[j].bit, b[i].sites[j].bit);
      EXPECT_EQ(a[i].sites[j].at_frac, b[i].sites[j].at_frac);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothArchs, TargetGenTest,
                         ::testing::Values(isa::Arch::kCisca,
                                           isa::Arch::kRiscf),
                         [](const auto& info) {
                           return info.param == isa::Arch::kCisca ? "cisca"
                                                                  : "riscf";
                         });

}  // namespace
}  // namespace kfi::inject
