// Protocol-level tests for ExperimentRunner: the paper's Section 3.3
// activation rules (write hits re-inject, read hits consume, unreached
// breakpoints mean not-activated), outcome classification, and latency
// accounting.
#include <gtest/gtest.h>

#include "inject/campaign.hpp"
#include "inject/experiment.hpp"
#include "kernel/layout.hpp"
#include "kernel/machine.hpp"
#include "workload/workload.hpp"

namespace kfi::inject {
namespace {

using kernel::Machine;
using kernel::MachineOptions;

class ExperimentTest : public ::testing::Test {
 protected:
  ExperimentTest()
      : machine_(isa::Arch::kCisca, MachineOptions{}),
        wl_(workload::make_suite()),
        channel_(0.0, 1),
        runner_(machine_, *wl_, channel_, collector_, 60'000'000,
                200'000'000) {}

  Machine machine_;
  std::unique_ptr<workload::Workload> wl_;
  UdpChannel channel_;
  CrashCollector collector_;
  ExperimentRunner runner_;
};

TEST_F(ExperimentTest, UnreachedDataWordIsNotActivated) {
  // Target a word in the cold inode_table: never accessed.
  const auto& obj = machine_.image().object("inode_table");
  const InjectionTarget t = InjectionTarget::data(obj.addr + 40, 9);
  const auto record = runner_.run_one(t, 1, 0);
  EXPECT_EQ(record.outcome, OutcomeCategory::kNotActivated);
  EXPECT_FALSE(record.activated);
  EXPECT_FALSE(record.crashed);
  EXPECT_GT(record.syscalls_completed, 100u);  // the whole workload ran
}

TEST_F(ExperimentTest, HotCounterWordIsActivated) {
  // jiffies is written on every timer tick and read by the scheduler: a
  // flip there must activate (read or write hit).
  const auto& obj = machine_.image().object("jiffies");
  // high bit: likely benign, but certainly accessed
  const InjectionTarget t = InjectionTarget::data(obj.addr, 30);
  const auto record = runner_.run_one(t, 2, 1);
  EXPECT_TRUE(record.activated);
  EXPECT_NE(record.outcome, OutcomeCategory::kNotActivated);
}

TEST_F(ExperimentTest, PointerFlipCrashesWithInvalidMemoryAccess) {
  // skb_head holds the free-list head pointer; flipping a high bit makes
  // alloc_skb dereference a wild address (the paper's Figure 7 class).
  const auto& obj = machine_.image().object("skb_head");
  const InjectionTarget t = InjectionTarget::data(obj.addr, 29);
  const auto record = runner_.run_one(t, 3, 2);
  ASSERT_EQ(record.outcome, OutcomeCategory::kKnownCrash);
  EXPECT_TRUE(kernel::is_invalid_memory_access(record.crash.cause))
      << kernel::crash_cause_name(record.crash.cause);
  // Activation precedes the crash; latency is the difference.
  EXPECT_GT(record.cycles_to_crash, 0u);
  EXPECT_LT(record.cycles_to_crash, 200'000'000u);
}

TEST_F(ExperimentTest, CodeBreakpointInFunctionNeverCalledIsNotActivated) {
  // Arm the code breakpoint inside kjournald's commit path... a simpler
  // guaranteed-unreached point: an address past the dispatcher's entry in
  // a function the workload never invokes is hard to pick robustly, so
  // use the generator-independent approach: a breakpoint on a hot
  // function IS reached; one on an address that is never fetched (the
  // glue page's unused tail) is not.
  const InjectionTarget t = InjectionTarget::code(
      0, kernel::kGlueBase + 0x800, 1, 0, "(none)");  // never fetched
  const auto record = runner_.run_one(t, 4, 3);
  EXPECT_EQ(record.outcome, OutcomeCategory::kNotActivated);
}

TEST_F(ExperimentTest, CodeBreakpointOnDispatcherActivates) {
  const auto& fn = machine_.image().function("sys_dispatch");
  // the prologue's first byte: push ebp (0x55)
  const InjectionTarget t = InjectionTarget::code(0, fn.addr, 1, 1, fn.name);
  const auto record = runner_.run_one(t, 5, 4);
  EXPECT_TRUE(record.activated);
  EXPECT_NE(record.outcome, OutcomeCategory::kNotActivated);
}

TEST_F(ExperimentTest, RegisterInjectionActivationIsUnknown) {
  const InjectionTarget t = InjectionTarget::sysreg(
      machine_.cpu().sysregs().index_of("DR2"), 7, 0.3);
  const auto record = runner_.run_one(t, 6, 5);
  EXPECT_FALSE(record.activation_known);
  EXPECT_EQ(record.outcome, OutcomeCategory::kNotManifested);
}

TEST_F(ExperimentTest, CrashReportsReachTheCollector) {
  const auto& obj = machine_.image().object("skb_head");
  const InjectionTarget t = InjectionTarget::data(obj.addr, 29);
  const auto record = runner_.run_one(t, 3, 42);
  ASSERT_TRUE(record.crashed);
  ASSERT_TRUE(collector_.has(42));
  // The collector's copy carries the re-based cycles-to-crash.
  EXPECT_EQ(collector_.get(42).cycles_to_crash, record.cycles_to_crash);
  EXPECT_EQ(collector_.get(42).cause, record.crash.cause);
}

TEST_F(ExperimentTest, RunsAreIndependentAcrossReboots) {
  // A crashing run followed by a cold-target run: the second must behave
  // exactly like a fresh machine (the watchdog "reboot" works).
  const auto& skb_head = machine_.image().object("skb_head");
  const InjectionTarget crash_t = InjectionTarget::data(skb_head.addr, 29);
  const auto first = runner_.run_one(crash_t, 3, 10);
  ASSERT_TRUE(first.crashed);

  const auto& cold = machine_.image().object("inode_table");
  const InjectionTarget cold_t = InjectionTarget::data(cold.addr, 3);
  const auto second = runner_.run_one(cold_t, 7, 11);
  EXPECT_EQ(second.outcome, OutcomeCategory::kNotActivated);
  EXPECT_EQ(runner_.reboots(), 2u);
}

TEST_F(ExperimentTest, StackTargetResolvesWithinTheChosenTaskStack) {
  const InjectionTarget t =
      InjectionTarget::stack(/*task=*/1 /*kupdate*/, 0.5, 12, 0.4);
  const auto record = runner_.run_one(t, 8, 6);
  // Whatever the outcome, it must be a legal category; and stack targets
  // on a sleeping thread frequently activate when the thread next runs.
  EXPECT_LT(static_cast<u32>(record.outcome),
            static_cast<u32>(OutcomeCategory::kNumOutcomes));
}

TEST_F(ExperimentTest, SameSeedSameTargetIsBitReproducible) {
  const auto& obj = machine_.image().object("page_free_list");
  const InjectionTarget t = InjectionTarget::data(obj.addr + 8, 27);
  const auto a = runner_.run_one(t, 99, 20);
  const auto b = runner_.run_one(t, 99, 21);
  EXPECT_EQ(a.outcome, b.outcome);
  EXPECT_EQ(a.activated, b.activated);
  EXPECT_EQ(a.cycles_to_crash, b.cycles_to_crash);
  if (a.crashed) {
    EXPECT_EQ(a.crash.pc, b.crash.pc);
    EXPECT_EQ(a.crash.cause, b.crash.cause);
  }
}

}  // namespace
}  // namespace kfi::inject
