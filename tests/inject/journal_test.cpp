// InjectionJournal durability contract: entry (de)serialization is a
// bit-exact round trip, resume recovers exactly what was appended,
// torn-tail entries are truncated away, and a journal written for one
// plan refuses to resume under a different one.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "inject/fault_model.hpp"
#include "inject/journal.hpp"
#include "inject/plan.hpp"

namespace kfi::inject {
namespace {

std::string tmp_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// A journal entry with every field set to a distinctive non-default
/// value, including doubles and strings, so the round trip has to carry
/// all of them.
JournalEntry full_entry() {
  JournalEntry e;
  e.index = 17;
  e.record.target = InjectionTarget::stack(3, 0.4375, 7, 0.62109375);
  e.record.target.function = "schedule";
  e.record.target.reg_name = "srr0";
  e.record.outcome = OutcomeCategory::kKnownCrash;
  e.record.activated = true;
  e.record.activation_known = false;
  e.record.activation_cycle = 123456789ull;
  e.record.latency_base_cycle = 123456000ull;
  e.record.crashed = true;
  e.record.crash_report_received = true;
  e.record.crash.cause = kernel::CrashCause::kStackOverflow;
  e.record.crash.pc = 0xC0DE;
  e.record.crash.addr = 0xDEAD;
  e.record.crash.has_addr = true;
  e.record.crash.cycles_to_crash = 4242;
  e.record.crash.detail = "sp out of range";
  e.record.cycles_to_crash = 98765;
  e.record.syscalls_completed = 11;
  e.record.harness_error = "worker threw: simulated";
  e.record.harness_attempts = 2;
  e.reboots = 3;
  e.datagrams_sent = 9;
  e.datagrams_dropped = 1;
  e.simulated_cycles = 555555555ull;
  e.record.propagation_valid = true;
  e.record.propagation.traced = true;
  e.record.propagation.seeded = true;
  e.record.propagation.seed_insn = 1000;
  e.record.propagation.used = true;
  e.record.propagation.first_use_insn = 1250;
  e.record.propagation.first_use_latency = 250;
  e.record.propagation.max_depth = 37;
  e.record.propagation.tainted_regs_peak = 4;
  e.record.propagation.tainted_bytes_peak = 96;
  e.record.propagation.tainted_reads = 61;
  e.record.propagation.tainted_writes = 58;
  e.record.propagation.tainted_branches = 12;
  e.record.propagation.pc_tainted_insns = 2;
  e.record.propagation.objects_crossed = 3;
  e.record.propagation.silent_overwrites = 21;
  e.record.propagation.syscall_result_tainted = true;
  e.record.propagation.priv_transitions = 6;
  e.record.propagation.live_at_end = true;
  e.record.propagation.live_regs_at_end = 2;
  e.record.propagation.live_bytes_at_end = 40;
  return e;
}

void expect_entries_equal(const JournalEntry& a, const JournalEntry& b) {
  EXPECT_EQ(a.index, b.index);
  EXPECT_EQ(a.reboots, b.reboots);
  EXPECT_EQ(a.datagrams_sent, b.datagrams_sent);
  EXPECT_EQ(a.datagrams_dropped, b.datagrams_dropped);
  EXPECT_EQ(a.simulated_cycles, b.simulated_cycles);
  const InjectionRecord& ra = a.record;
  const InjectionRecord& rb = b.record;
  EXPECT_EQ(ra.target.kind, rb.target.kind);
  EXPECT_EQ(ra.target.code_entry, rb.target.code_entry);
  EXPECT_EQ(ra.target.function, rb.target.function);
  EXPECT_EQ(ra.target.opclass, rb.target.opclass);
  EXPECT_EQ(ra.target.reg_name, rb.target.reg_name);
  EXPECT_EQ(ra.target.inject_at_frac, rb.target.inject_at_frac);
  ASSERT_EQ(ra.target.sites.size(), rb.target.sites.size());
  for (size_t j = 0; j < ra.target.sites.size(); ++j) {
    EXPECT_EQ(ra.target.sites[j].addr, rb.target.sites[j].addr);
    EXPECT_EQ(ra.target.sites[j].bit, rb.target.sites[j].bit);
    EXPECT_EQ(ra.target.sites[j].insn_len, rb.target.sites[j].insn_len);
    EXPECT_EQ(ra.target.sites[j].task, rb.target.sites[j].task);
    EXPECT_EQ(ra.target.sites[j].depth_frac, rb.target.sites[j].depth_frac);
    EXPECT_EQ(ra.target.sites[j].reg_index, rb.target.sites[j].reg_index);
    EXPECT_EQ(ra.target.sites[j].at_frac, rb.target.sites[j].at_frac);
  }
  EXPECT_EQ(ra.outcome, rb.outcome);
  EXPECT_EQ(ra.activated, rb.activated);
  EXPECT_EQ(ra.activation_known, rb.activation_known);
  EXPECT_EQ(ra.activation_cycle, rb.activation_cycle);
  EXPECT_EQ(ra.latency_base_cycle, rb.latency_base_cycle);
  EXPECT_EQ(ra.crashed, rb.crashed);
  EXPECT_EQ(ra.crash_report_received, rb.crash_report_received);
  EXPECT_EQ(ra.crash.cause, rb.crash.cause);
  EXPECT_EQ(ra.crash.pc, rb.crash.pc);
  EXPECT_EQ(ra.crash.addr, rb.crash.addr);
  EXPECT_EQ(ra.crash.has_addr, rb.crash.has_addr);
  EXPECT_EQ(ra.crash.cycles_to_crash, rb.crash.cycles_to_crash);
  EXPECT_EQ(ra.crash.detail, rb.crash.detail);
  EXPECT_EQ(ra.cycles_to_crash, rb.cycles_to_crash);
  EXPECT_EQ(ra.syscalls_completed, rb.syscalls_completed);
  EXPECT_EQ(ra.harness_error, rb.harness_error);
  EXPECT_EQ(ra.harness_attempts, rb.harness_attempts);
  EXPECT_EQ(ra.propagation_valid, rb.propagation_valid);
  const trace::PropagationSummary& pa = ra.propagation;
  const trace::PropagationSummary& pb = rb.propagation;
  EXPECT_EQ(pa.traced, pb.traced);
  EXPECT_EQ(pa.seeded, pb.seeded);
  EXPECT_EQ(pa.seed_insn, pb.seed_insn);
  EXPECT_EQ(pa.used, pb.used);
  EXPECT_EQ(pa.first_use_insn, pb.first_use_insn);
  EXPECT_EQ(pa.first_use_latency, pb.first_use_latency);
  EXPECT_EQ(pa.max_depth, pb.max_depth);
  EXPECT_EQ(pa.tainted_regs_peak, pb.tainted_regs_peak);
  EXPECT_EQ(pa.tainted_bytes_peak, pb.tainted_bytes_peak);
  EXPECT_EQ(pa.tainted_reads, pb.tainted_reads);
  EXPECT_EQ(pa.tainted_writes, pb.tainted_writes);
  EXPECT_EQ(pa.tainted_branches, pb.tainted_branches);
  EXPECT_EQ(pa.pc_tainted_insns, pb.pc_tainted_insns);
  EXPECT_EQ(pa.objects_crossed, pb.objects_crossed);
  EXPECT_EQ(pa.silent_overwrites, pb.silent_overwrites);
  EXPECT_EQ(pa.syscall_result_tainted, pb.syscall_result_tainted);
  EXPECT_EQ(pa.priv_transitions, pb.priv_transitions);
  EXPECT_EQ(pa.live_at_end, pb.live_at_end);
  EXPECT_EQ(pa.live_regs_at_end, pb.live_regs_at_end);
  EXPECT_EQ(pa.live_bytes_at_end, pb.live_bytes_at_end);
}

TEST(JournalEntrySerialization, RoundTripPreservesEveryField) {
  const JournalEntry e = full_entry();
  std::vector<u8> buf;
  serialize_journal_entry(buf, e);
  size_t pos = 0;
  const auto back = deserialize_journal_entry(buf, pos);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(pos, buf.size());
  expect_entries_equal(e, *back);
}

TEST(JournalEntrySerialization, DefaultEntryRoundTrips) {
  std::vector<u8> buf;
  serialize_journal_entry(buf, JournalEntry{});
  size_t pos = 0;
  const auto back = deserialize_journal_entry(buf, pos);
  ASSERT_TRUE(back.has_value());
  expect_entries_equal(JournalEntry{}, *back);
}

TEST(JournalEntrySerialization, EveryTruncationReturnsNullopt) {
  std::vector<u8> buf;
  serialize_journal_entry(buf, full_entry());
  // Any proper prefix must fail cleanly — no out-of-bounds reads, no
  // partially-filled entries.  (The ASan CI job makes "no OOB" a hard
  // check rather than a hope.)
  for (size_t len = 0; len < buf.size(); ++len) {
    std::vector<u8> cut(buf.begin(), buf.begin() + static_cast<long>(len));
    size_t pos = 0;
    EXPECT_FALSE(deserialize_journal_entry(cut, pos).has_value())
        << "prefix length " << len;
  }
}

TEST(JournalEntrySerialization, V1LayoutOmitsPropagationBlock) {
  const JournalEntry e = full_entry();
  std::vector<u8> v1, v2;
  serialize_journal_entry(v1, e, kJournalVersionV1);
  serialize_journal_entry(v2, e, kJournalVersion);
  EXPECT_LT(v1.size(), v2.size());
  size_t pos = 0;
  const auto back = deserialize_journal_entry(v1, pos, kJournalVersionV1);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(pos, v1.size());
  // Every pre-propagation field round-trips; the summary itself cannot
  // be carried by a v1 payload and must come back unset.
  EXPECT_FALSE(back->record.propagation_valid);
  JournalEntry expect = e;
  expect.record.propagation_valid = false;
  expect.record.propagation = {};
  expect_entries_equal(expect, *back);
}

TEST(JournalEntrySerialization, CorruptEnumRejected) {
  std::vector<u8> buf;
  serialize_journal_entry(buf, JournalEntry{});
  // Byte 4 (after the u32 index) is the target kind; stomp it with a
  // value outside the enum range.
  buf[4] = 0xFF;
  size_t pos = 0;
  EXPECT_FALSE(deserialize_journal_entry(buf, pos).has_value());
}

class JournalFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CampaignSpec spec;
    spec.arch = isa::Arch::kRiscf;
    spec.kind = CampaignKind::kData;
    spec.injections = 8;
    spec.seed = 42;
    plan_ = build_campaign_plan(spec);
    path_ = tmp_path(
        "kfi_journal_test_" +
        std::to_string(::testing::UnitTest::GetInstance()
                           ->current_test_info()
                           ->line()) +
        ".kfij");
    std::filesystem::remove(path_);
  }
  void TearDown() override { std::filesystem::remove(path_); }

  CampaignPlan plan_;
  std::string path_;
};

TEST_F(JournalFileTest, CreateAppendResumeRecoversEntries) {
  {
    InjectionJournal j = InjectionJournal::create(path_, plan_);
    EXPECT_TRUE(j.recovered().empty());
    JournalEntry e = full_entry();
    e.index = 2;
    j.append(e);
    e.index = 5;
    e.record.outcome = OutcomeCategory::kNotManifested;
    j.append(e);
    EXPECT_EQ(j.flushes(), 2u);
  }
  InjectionJournal j = InjectionJournal::resume(path_, plan_);
  ASSERT_EQ(j.recovered().size(), 2u);
  EXPECT_EQ(j.recovered()[0].index, 2u);
  EXPECT_EQ(j.recovered()[1].index, 5u);
  EXPECT_EQ(j.recovered()[1].record.outcome, OutcomeCategory::kNotManifested);
  JournalEntry expect_first = full_entry();
  expect_first.index = 2;
  expect_entries_equal(expect_first, j.recovered()[0]);
}

TEST_F(JournalFileTest, ResumeTruncatesTornTail) {
  {
    InjectionJournal j = InjectionJournal::create(path_, plan_);
    JournalEntry e = full_entry();
    e.index = 0;
    j.append(e);
    e.index = 1;
    j.append(e);
  }
  const auto intact_size = std::filesystem::file_size(path_);
  {
    // Simulate a process killed mid-append: half an entry frame.
    std::ofstream f(path_, std::ios::binary | std::ios::app);
    f.write("KFIE\x00\x00\x00\x07garbage", 15);
  }
  ASSERT_GT(std::filesystem::file_size(path_), intact_size);
  InjectionJournal j = InjectionJournal::resume(path_, plan_);
  EXPECT_EQ(j.recovered().size(), 2u);
  // The torn tail is physically gone, so the next append starts clean.
  EXPECT_EQ(std::filesystem::file_size(path_), intact_size);
  JournalEntry e = full_entry();
  e.index = 3;
  j.append(e);
  InjectionJournal j2 = InjectionJournal::resume(path_, plan_);
  EXPECT_EQ(j2.recovered().size(), 3u);
}

TEST_F(JournalFileTest, ResumeRejectsForeignPlan) {
  { InjectionJournal::create(path_, plan_); }
  CampaignSpec other;
  other.arch = isa::Arch::kRiscf;
  other.kind = CampaignKind::kData;
  other.injections = 8;
  other.seed = 43;  // different seed -> different targets & fingerprint
  const CampaignPlan other_plan = build_campaign_plan(other);
  EXPECT_THROW(InjectionJournal::resume(path_, other_plan), JournalError);
}

TEST_F(JournalFileTest, ResumeRejectsMissingFile) {
  EXPECT_THROW(InjectionJournal::resume(path_, plan_), JournalError);
}

TEST_F(JournalFileTest, ResumeRejectsGarbageHeader) {
  {
    std::ofstream f(path_, std::ios::binary);
    f << "this is not a journal";
  }
  EXPECT_THROW(InjectionJournal::resume(path_, plan_), JournalError);
}

// Big-endian header writer for version-compatibility tests: lets a test
// fabricate a journal header the current build would never write itself
// (an old v1 file, or one from a hypothetical future build).
void write_bare_header(const std::string& path, u32 version, u64 fingerprint,
                       u32 total, u64 model_fingerprint = 0,
                       u64 errno_fingerprint = 0) {
  std::vector<u8> h;
  const auto put32 = [&h](u32 v) {
    h.push_back(static_cast<u8>(v >> 24));
    h.push_back(static_cast<u8>(v >> 16));
    h.push_back(static_cast<u8>(v >> 8));
    h.push_back(static_cast<u8>(v));
  };
  put32(0x4B46494A);  // "KFIJ"
  put32(version);
  put32(static_cast<u32>(fingerprint >> 32));
  put32(static_cast<u32>(fingerprint));
  if (version >= kJournalVersionV3) {
    put32(static_cast<u32>(model_fingerprint >> 32));
    put32(static_cast<u32>(model_fingerprint));
  }
  if (version >= kJournalVersion) {
    put32(static_cast<u32>(errno_fingerprint >> 32));
    put32(static_cast<u32>(errno_fingerprint));
  }
  put32(total);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(h.data()), static_cast<long>(h.size()));
}

TEST_F(JournalFileTest, CreatedJournalIsCurrentVersion) {
  const InjectionJournal j = InjectionJournal::create(path_, plan_);
  EXPECT_EQ(j.version(), kJournalVersion);
}

TEST_F(JournalFileTest, CurrentJournalPersistsPropagationSummaries) {
  {
    InjectionJournal j = InjectionJournal::create(path_, plan_);
    JournalEntry e = full_entry();
    e.index = 1;
    j.append(e);
  }
  InjectionJournal j = InjectionJournal::resume(path_, plan_);
  EXPECT_EQ(j.version(), kJournalVersion);
  ASSERT_EQ(j.recovered().size(), 1u);
  EXPECT_TRUE(j.recovered()[0].record.propagation_valid);
  EXPECT_EQ(j.recovered()[0].record.propagation.max_depth, 37u);
  EXPECT_EQ(j.recovered()[0].record.propagation.first_use_latency, 250u);
}

TEST_F(JournalFileTest, V1JournalResumesAndAppendsStayV1) {
  // A journal left behind by a pre-propagation build: v1 header, no
  // entries yet.
  write_bare_header(path_, kJournalVersionV1, plan_fingerprint(plan_),
                    static_cast<u32>(plan_.targets.size()));
  {
    InjectionJournal j = InjectionJournal::resume(path_, plan_);
    EXPECT_EQ(j.version(), kJournalVersionV1);
    EXPECT_TRUE(j.recovered().empty());
    JournalEntry e = full_entry();  // carries a summary in memory...
    e.index = 4;
    j.append(e);
  }
  // ...but the file's own version wins: the append was written v1 and
  // the journal stays uniformly readable as v1.
  InjectionJournal j = InjectionJournal::resume(path_, plan_);
  EXPECT_EQ(j.version(), kJournalVersionV1);
  ASSERT_EQ(j.recovered().size(), 1u);
  EXPECT_EQ(j.recovered()[0].index, 4u);
  EXPECT_FALSE(j.recovered()[0].record.propagation_valid);
  // The pre-propagation fields made the trip regardless.
  EXPECT_EQ(j.recovered()[0].record.crash.detail, "sp out of range");
  JournalEntry expect = full_entry();
  expect.index = 4;
  expect.record.propagation_valid = false;
  expect.record.propagation = {};
  expect_entries_equal(expect, j.recovered()[0]);
}

TEST_F(JournalFileTest, ResumeRejectsUnknownVersions) {
  for (const u32 bad : {0u, 99u}) {
    write_bare_header(path_, bad, plan_fingerprint(plan_),
                      static_cast<u32>(plan_.targets.size()));
    try {
      InjectionJournal::resume(path_, plan_);
      FAIL() << "accepted journal version " << bad;
    } catch (const JournalError& e) {
      EXPECT_NE(std::string(e.what()).find("version"), std::string::npos)
          << e.what();
    }
  }
}

TEST_F(JournalFileTest, PlanFingerprintSensitiveToTargetsAndSeeds) {
  const u64 base = plan_fingerprint(plan_);
  CampaignPlan tweaked = plan_;
  tweaked.run_seeds[0] ^= 1;
  EXPECT_NE(base, plan_fingerprint(tweaked));
  CampaignPlan retargeted = plan_;
  retargeted.targets[0].site().bit ^= 1;
  EXPECT_NE(base, plan_fingerprint(retargeted));
  EXPECT_EQ(base, plan_fingerprint(plan_));
}


TEST_F(JournalFileTest, MultiSiteTargetRoundTripsInV3) {
  JournalEntry e = full_entry();
  e.record.target = InjectionTarget::data(0xBEEF0, 31);
  e.record.target.sites.push_back(FaultSite{0xBEEF0, 30, 1, 0, 0.0, 0, 0.0});
  e.record.target.sites.push_back(FaultSite{0xBEEF4, 3, 1, 0, 0.0, 0, 0.25});
  std::vector<u8> buf;
  serialize_journal_entry(buf, e, kJournalVersion);
  size_t pos = 0;
  const auto back = deserialize_journal_entry(buf, pos, kJournalVersion);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(pos, buf.size());
  expect_entries_equal(e, *back);
}

TEST_F(JournalFileTest, V2JournalResumesAndLegacyAppendsStayV2) {
  // A journal left behind by a pre-fault-model build: v2 header (no model
  // fingerprint).  Only legacy plans can match its plan fingerprint, and
  // appends must keep the file uniformly v2.
  write_bare_header(path_, kJournalVersionV2, plan_fingerprint(plan_),
                    static_cast<u32>(plan_.targets.size()));
  {
    InjectionJournal j = InjectionJournal::resume(path_, plan_);
    EXPECT_EQ(j.version(), kJournalVersionV2);
    EXPECT_TRUE(j.recovered().empty());
    JournalEntry e = full_entry();
    e.index = 6;
    j.append(e);
  }
  InjectionJournal j = InjectionJournal::resume(path_, plan_);
  EXPECT_EQ(j.version(), kJournalVersionV2);
  ASSERT_EQ(j.recovered().size(), 1u);
  EXPECT_EQ(j.recovered()[0].index, 6u);
  // v2 carries the propagation block and the flat single-site target.
  EXPECT_TRUE(j.recovered()[0].record.propagation_valid);
  JournalEntry expect = full_entry();
  expect.index = 6;
  expect_entries_equal(expect, j.recovered()[0]);
}

TEST_F(JournalFileTest, V3ResumeRejectsForeignFaultModel) {
  // Same plan fingerprint, different fault-model fingerprint in the v3
  // header: the resume must refuse with a fault-model-specific error.
  FaultModel other;
  other.shape = FaultShape::kMultiBit;
  other.bits = 4;
  write_bare_header(path_, kJournalVersionV3, plan_fingerprint(plan_),
                    static_cast<u32>(plan_.targets.size()),
                    fault_model_fingerprint(other));
  try {
    InjectionJournal::resume(path_, plan_);
    FAIL() << "accepted a journal with a foreign fault-model fingerprint";
  } catch (const JournalError& e) {
    EXPECT_NE(std::string(e.what()).find("fault model"), std::string::npos)
        << e.what();
  }
}

TEST_F(JournalFileTest, V3ResumeAcceptsMatchingFaultModel) {
  { InjectionJournal::create(path_, plan_); }
  const InjectionJournal j = InjectionJournal::resume(path_, plan_);
  EXPECT_EQ(j.version(), kJournalVersion);
}

TEST(FlushPolicyParse, KnownAndUnknownValues) {
  EXPECT_EQ(parse_flush_policy("fsync"), FlushPolicy::kFsync);
  EXPECT_EQ(parse_flush_policy("flush"), FlushPolicy::kFlush);
  EXPECT_FALSE(parse_flush_policy("buffered").has_value());
  EXPECT_FALSE(parse_flush_policy("").has_value());
}

TEST_F(JournalFileTest, FlushPolicyKnobKeepsTheJournalReadable) {
  {
    InjectionJournal j =
        InjectionJournal::create(path_, plan_, FlushPolicy::kFlush);
    EXPECT_EQ(j.flush_policy(), FlushPolicy::kFlush);
    JournalEntry e = full_entry();
    e.index = 1;
    j.append(e);
  }
  InjectionJournal j =
      InjectionJournal::resume(path_, plan_, FlushPolicy::kFlush);
  EXPECT_EQ(j.flush_policy(), FlushPolicy::kFlush);
  ASSERT_EQ(j.recovered().size(), 1u);
  expect_entries_equal([] {
    JournalEntry e = full_entry();
    e.index = 1;
    return e;
  }(), j.recovered()[0]);
}

TEST_F(JournalFileTest, ResumeRecoversFromTruncationAtEveryByte) {
  // The crash-durability contract: a journal cut anywhere — mid-header,
  // mid-frame, between frames — resumes with exactly the frames that
  // were fully on disk, and the torn tail is physically truncated so the
  // next append starts clean.  This simulates SIGKILL / power loss at
  // every possible write boundary.
  std::vector<size_t> boundaries;  // file size after header, after each frame
  {
    InjectionJournal j = InjectionJournal::create(path_, plan_);
    boundaries.push_back(std::filesystem::file_size(path_));
    for (u32 i = 0; i < 3; ++i) {
      JournalEntry e = full_entry();
      e.index = i;
      j.append(e);
      boundaries.push_back(std::filesystem::file_size(path_));
    }
  }
  std::vector<char> bytes(boundaries.back());
  {
    std::ifstream f(path_, std::ios::binary);
    f.read(bytes.data(), static_cast<long>(bytes.size()));
    ASSERT_TRUE(f.good());
  }
  const std::string cut_path = path_ + ".cut";
  for (size_t len = 0; len <= bytes.size(); ++len) {
    {
      std::ofstream f(cut_path, std::ios::binary | std::ios::trunc);
      f.write(bytes.data(), static_cast<long>(len));
    }
    if (len < boundaries.front()) {
      // Not even a whole header survived: the journal is unusable and
      // must say so, not misread garbage.
      EXPECT_THROW(InjectionJournal::resume(cut_path, plan_), JournalError)
          << "cut at byte " << len;
      continue;
    }
    size_t intact = 0;
    while (intact + 1 < boundaries.size() && boundaries[intact + 1] <= len) {
      ++intact;
    }
    InjectionJournal j = InjectionJournal::resume(cut_path, plan_);
    ASSERT_EQ(j.recovered().size(), intact) << "cut at byte " << len;
    for (size_t i = 0; i < intact; ++i) {
      EXPECT_EQ(j.recovered()[i].index, i);
    }
    EXPECT_EQ(std::filesystem::file_size(cut_path), boundaries[intact])
        << "torn tail not truncated at byte " << len;
    // The truncated journal accepts new appends and stays readable.
    JournalEntry e = full_entry();
    e.index = 7;
    j.append(e);
    InjectionJournal j2 = InjectionJournal::resume(cut_path, plan_);
    EXPECT_EQ(j2.recovered().size(), intact + 1) << "cut at byte " << len;
  }
  std::filesystem::remove(cut_path);
}

TEST_F(JournalFileTest, ReadJournalFileReportsIntactPrefixWithoutTruncating) {
  {
    InjectionJournal j = InjectionJournal::create(path_, plan_);
    JournalEntry e = full_entry();
    e.index = 0;
    j.append(e);
  }
  const auto intact_size = std::filesystem::file_size(path_);
  {
    std::ofstream f(path_, std::ios::binary | std::ios::app);
    f.write("KFIE\x00\x00\x00\x01garbage", 15);
  }
  const JournalFileData data = read_journal_file(path_);
  EXPECT_EQ(data.version, kJournalVersion);
  EXPECT_EQ(data.plan_fingerprint, plan_fingerprint(plan_));
  EXPECT_EQ(data.total, plan_.targets.size());
  ASSERT_EQ(data.entries.size(), 1u);
  EXPECT_EQ(data.intact_end, intact_size);
  EXPECT_GT(data.file_size, data.intact_end);
  // Unlike resume, the read-only path must leave the file untouched.
  EXPECT_GT(std::filesystem::file_size(path_), intact_size);
}

}  // namespace
}  // namespace kfi::inject
