// kfi_campaignd: long-running campaign daemon, one host of a multi-host
// fabric.
//
//   kfi_campaignd --port P [--bind ADDR] [--dir DIR] [--port-file PATH]
//                 [--verbose]
//
// The daemon binds a TCP port (0 = ephemeral; --port-file publishes the
// bound port for scripts) and serves campaign shard submissions forever:
// each accepted connection is one session (net.hpp's KFNM protocol).
// A session rebuilds the campaign plan deterministically from the
// submitted spec blob and refuses — typed, before any injection — if the
// rebuilt fingerprint disagrees with the client's --expect-plan-fp or
// the protocol versions differ.  Accepted shards run on the existing
// CampaignEngine in slice mode against a LOCAL journal under --dir
// (named by plan fingerprint + shard), so a daemon that is kill -9ed
// loses wall-clock only: the next submission with fresh=false resumes
// the journal and already-completed indices never re-execute.
//
// While running, the session streams KFFR status frames (hello /
// progress / heartbeat / done) inside kStatus messages — heartbeats
// renew the client's lease, progress frames carry the live outcome
// tally.  On completion the shard journal is streamed back
// byte-for-byte (kJournal).  A client that vanishes mid-run is noticed
// by the heartbeat thread (socket probe / failed send) and the engine
// is cancelled at the next injection boundary with the journal flushed.
//
// SIGTERM/SIGINT drain: stop accepting, let in-flight sessions finish,
// then exit 0.
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <memory>
#include <fstream>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fabric/net.hpp"
#include "fabric/shard.hpp"
#include "fabric/wire.hpp"
#include "inject/campaign.hpp"
#include "inject/engine.hpp"
#include "inject/journal.hpp"

using namespace kfi;

namespace {

std::atomic<bool> g_shutdown{false};

void on_term(int) { g_shutdown.store(true); }

bool g_verbose = false;

void logf(const char* fmt, ...) {
  if (!g_verbose) return;
  va_list ap;
  va_start(ap, fmt);
  std::fprintf(stderr, "campaignd: ");
  std::vfprintf(stderr, fmt, ap);
  std::fputc('\n', stderr);
  va_end(ap);
}

/// One (plan fingerprint, shard) may have at most one live session: a
/// second submission for the same shard journal — e.g. after the client
/// revoked a lease the daemon outlived — is refused kBusy until the
/// first session notices the dead socket and cancels.
std::mutex g_active_mutex;
std::set<std::pair<u64, u32>> g_active;

struct ActiveKey {
  std::pair<u64, u32> key;
  bool held = false;

  bool acquire(u64 fp, u32 shard) {
    const std::lock_guard<std::mutex> lock(g_active_mutex);
    key = {fp, shard};
    held = g_active.insert(key).second;
    return held;
  }
  ~ActiveKey() {
    if (!held) return;
    const std::lock_guard<std::mutex> lock(g_active_mutex);
    g_active.erase(key);
  }
};

void refuse(int fd, fabric::RefuseCode code, const std::string& reason) {
  fabric::Refusal r;
  r.code = code;
  r.reason = reason;
  fabric::send_message(
      fd, fabric::NetMessage{fabric::MsgType::kRefuse,
                             fabric::encode_refusal(r)});
  logf("refused: %s", reason.c_str());
}

/// Wait for the client's kSubmit on a fresh connection.  Bounded: a
/// connection that stays silent or trickles garbage is dropped so a
/// draining daemon never wedges on it.
std::optional<fabric::SubmitRequest> read_submit(int fd) {
  fabric::MsgReader reader;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    pollfd pfd{fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 500);
    if (rc < 0 && errno != EINTR) return std::nullopt;
    if (g_shutdown.load()) return std::nullopt;
    if (rc <= 0) continue;
    u8 buf[65536];
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return std::nullopt;
    }
    reader.feed(buf, static_cast<size_t>(n));
    if (auto msg = reader.next()) {
      if (msg->type != fabric::MsgType::kSubmit) {
        refuse(fd, fabric::RefuseCode::kBadRequest,
               "expected a submit message");
        return std::nullopt;
      }
      auto req = fabric::decode_submit(msg->body);
      if (!req) {
        refuse(fd, fabric::RefuseCode::kBadRequest,
               "submit body does not decode");
      }
      return req;
    }
    if (reader.corrupted()) {
      refuse(fd, fabric::RefuseCode::kBadRequest, "corrupt message stream");
      return std::nullopt;
    }
  }
  return std::nullopt;
}

/// Serialize all socket writes of one session (engine progress callback
/// and heartbeat thread both send status frames).
struct SessionSender {
  int fd;
  std::mutex mutex;
  std::atomic<bool> dead{false};

  bool send(fabric::MsgType type, std::vector<u8> body) {
    const std::lock_guard<std::mutex> lock(mutex);
    if (dead.load()) return false;
    if (!fabric::send_message(fd, fabric::NetMessage{type, std::move(body)})) {
      dead.store(true);
      return false;
    }
    return true;
  }
  bool send_frame(const fabric::StatusFrame& frame) {
    return send(fabric::MsgType::kStatus, fabric::encode_frame(frame));
  }
};

void serve_session(int fd, const std::string& dir) {
  const auto req = read_submit(fd);
  if (!req) {
    ::close(fd);
    return;
  }

  if (req->protocol != fabric::kNetProtocolVersion) {
    refuse(fd, fabric::RefuseCode::kSkew,
           "protocol version " + std::to_string(req->protocol) +
               " != daemon's " +
               std::to_string(fabric::kNetProtocolVersion));
    ::close(fd);
    return;
  }
  const auto spec = fabric::deserialize_campaign_spec(req->spec);
  if (!spec) {
    refuse(fd, fabric::RefuseCode::kBadRequest, "spec blob does not decode");
    ::close(fd);
    return;
  }
  const auto indices = fabric::parse_index_ranges(req->indices);
  if (!indices || indices->empty()) {
    refuse(fd, fabric::RefuseCode::kBadRequest,
           "bad index ranges '" + req->indices + "'");
    ::close(fd);
    return;
  }

  try {
    // Plan building is deterministic, so the fingerprint handshake
    // catches any skew between client and daemon binaries before the
    // first injection.
    const inject::CampaignPlan plan = inject::build_campaign_plan(*spec);
    const u64 plan_fp = inject::plan_fingerprint(plan);
    if (plan_fp != req->expect_plan_fp) {
      char want[17], got[17];
      std::snprintf(want, sizeof(want), "%016llx",
                    static_cast<unsigned long long>(req->expect_plan_fp));
      std::snprintf(got, sizeof(got), "%016llx",
                    static_cast<unsigned long long>(plan_fp));
      refuse(fd, fabric::RefuseCode::kSkew,
             std::string("plan fingerprint skew: client expects ") + want +
                 ", daemon rebuilt " + got +
                 " (client and daemon binaries disagree)");
      ::close(fd);
      return;
    }
    for (const u32 i : *indices) {
      if (i >= plan.targets.size()) {
        refuse(fd, fabric::RefuseCode::kBadRequest,
               "index " + std::to_string(i) + " out of range (plan has " +
                   std::to_string(plan.targets.size()) + " targets)");
        ::close(fd);
        return;
      }
    }

    ActiveKey active;
    if (!active.acquire(plan_fp, req->shard)) {
      refuse(fd, fabric::RefuseCode::kBusy,
             "shard " + std::to_string(req->shard) +
                 " of this plan already has a live session");
      ::close(fd);
      return;
    }

    char fp_hex[17];
    std::snprintf(fp_hex, sizeof(fp_hex), "%016llx",
                  static_cast<unsigned long long>(plan_fp));
    const std::string journal_path = fabric::shard_journal_path(
        dir + "/" + fp_hex, req->shard, req->shards);
    if (req->fresh) {
      std::remove(journal_path.c_str());
    }
    const inject::FlushPolicy flush =
        req->flush == static_cast<u8>(inject::FlushPolicy::kFlush)
            ? inject::FlushPolicy::kFlush
            : inject::FlushPolicy::kFsync;
    inject::InjectionJournal journal = [&]() {
      try {
        return inject::InjectionJournal::resume(journal_path, plan, flush);
      } catch (const inject::JournalError&) {
        return inject::InjectionJournal::create(journal_path, plan, flush);
      }
    }();

    fabric::AcceptInfo info;
    info.plan_fingerprint = plan_fp;
    info.resumed = static_cast<u32>(journal.recovered().size());
    info.pid = static_cast<u32>(::getpid());
    SessionSender sender{fd};
    if (!sender.send(fabric::MsgType::kAccept, fabric::encode_accept(info))) {
      ::close(fd);
      return;
    }
    logf("accepted plan %s shard %u/%u (%zu indices, %u resumed%s)", fp_hex,
         req->shard, req->shards, indices->size(), info.resumed,
         req->fresh ? ", fresh" : "");

    fabric::StatusFrame base;
    base.plan_fingerprint = plan_fp;
    base.shard = req->shard;
    base.pid = info.pid;
    base.total = static_cast<u32>(indices->size());

    // Live outcome tally, seeded from the resumed journal.
    std::array<std::atomic<u32>, fabric::kFrameOutcomeSlots> outcomes{};
    auto count_outcome = [&outcomes](inject::OutcomeCategory outcome) {
      const auto slot = static_cast<size_t>(outcome);
      if (slot < outcomes.size()) {
        outcomes[slot].fetch_add(1, std::memory_order_relaxed);
      }
    };
    for (const inject::JournalEntry& e : journal.recovered()) {
      count_outcome(e.record.outcome);
    }
    auto fill_outcomes = [&outcomes](fabric::StatusFrame& f) {
      for (size_t i = 0; i < f.outcomes.size(); ++i) {
        f.outcomes[i] = outcomes[i].load(std::memory_order_relaxed);
      }
    };

    fabric::StatusFrame hello = base;
    hello.type = fabric::FrameType::kHello;
    sender.send_frame(hello);

    // The heartbeat thread renews the client's lease through long
    // injections AND doubles as the socket-health probe: a client that
    // closed its end (lease revoked, Ctrl-C, crash) turns the probe or
    // the next send into a failure, which cancels the engine at the
    // next injection boundary — the journal stays flushed for the
    // re-dispatch.
    std::atomic<bool> cancel{false};
    std::atomic<u32> done_count{static_cast<u32>(info.resumed)};
    std::atomic<bool> stop_heartbeat{false};
    const double heartbeat =
        req->heartbeat_seconds > 0.0 ? req->heartbeat_seconds : 1.0;
    std::thread heartbeat_thread([&]() {
      while (!stop_heartbeat.load()) {
        std::this_thread::sleep_for(std::chrono::duration<double>(heartbeat));
        if (stop_heartbeat.load()) break;
        char probe;
        const ssize_t r =
            ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
        if (r == 0 || (r < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                       errno != EINTR)) {
          cancel.store(true);
          sender.dead.store(true);
          return;
        }
        fabric::StatusFrame f = base;
        f.type = fabric::FrameType::kHeartbeat;
        f.done = done_count.load();
        fill_outcomes(f);
        if (!sender.send_frame(f)) {
          cancel.store(true);
          return;
        }
      }
    });
    struct HeartbeatGuard {
      std::atomic<bool>& stop;
      std::thread& thread;
      ~HeartbeatGuard() {
        stop.store(true);
        if (thread.joinable()) thread.join();
      }
    } guard{stop_heartbeat, heartbeat_thread};

    inject::RunControl control;
    control.journal = &journal;
    control.indices = &*indices;
    control.retries = req->retries > 0 ? req->retries : 1;
    control.stall_seconds = req->stall_seconds;
    control.cancel = &cancel;
    control.record_observer =
        [&](u32, const inject::InjectionRecord& record) {
          count_outcome(record.outcome);
        };
    const inject::CampaignResult result =
        inject::CampaignEngine(req->jobs > 0 ? req->jobs : 1)
            .run(
                plan,
                [&](u32 done, u32 total) {
                  done_count.store(done);
                  fabric::StatusFrame f = base;
                  f.type = fabric::FrameType::kProgress;
                  f.done = done;
                  f.total = total;
                  fill_outcomes(f);
                  sender.send_frame(f);
                },
                control);

    if (result.interrupted || cancel.load()) {
      logf("session for shard %u cancelled (client gone); journal kept",
           req->shard);
      ::close(fd);
      return;
    }

    fabric::StatusFrame done = base;
    done.type = fabric::FrameType::kDone;
    done.done = static_cast<u32>(indices->size());
    fill_outcomes(done);
    done.executed = result.journal_flushes;
    done.quarantined = result.quarantined;
    done.stalls = result.stalls;
    done.harness_retries = result.harness_retries;
    done.backoff_waits = result.retry_backoff_waits;
    done.backoff_seconds = result.retry_backoff_seconds;
    sender.send_frame(done);

    // Stream the completed shard journal back byte-for-byte; the client
    // splices it with the other shards.
    std::ifstream in(journal_path, std::ios::binary);
    std::vector<u8> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
    sender.send(fabric::MsgType::kJournal, std::move(bytes));
    logf("shard %u complete, journal streamed (%s)", req->shard,
         journal_path.c_str());
  } catch (const std::exception& e) {
    fabric::StatusFrame f;
    f.type = fabric::FrameType::kError;
    f.message = e.what();
    fabric::send_message(fd, fabric::NetMessage{fabric::MsgType::kStatus,
                                                fabric::encode_frame(f)});
    logf("session error: %s", e.what());
  }
  ::close(fd);
}

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port P [--bind ADDR] [--dir DIR]\n"
               "          [--port-file PATH] [--verbose]\n"
               "  --port P:      TCP port to listen on (0 = ephemeral)\n"
               "  --bind ADDR:   bind address (default 127.0.0.1)\n"
               "  --dir DIR:     shard journal directory (default .)\n"
               "  --port-file F: write the bound port to F (for scripts\n"
               "                 using --port 0)\n"
               "  --verbose:     narrate sessions to stderr\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string bind_addr = "127.0.0.1", dir = ".", port_file;
  u16 port = 0;
  bool have_port = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--port") {
      const unsigned long v = std::strtoul(next(), nullptr, 10);
      if (v > 65535) {
        usage(argv[0]);
        return 2;
      }
      port = static_cast<u16>(v);
      have_port = true;
    } else if (arg == "--bind") {
      bind_addr = next();
    } else if (arg == "--dir") {
      dir = next();
    } else if (arg == "--port-file") {
      port_file = next();
    } else if (arg == "--verbose") {
      g_verbose = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (!have_port) {
    usage(argv[0]);
    return 2;
  }

  // A vanished client must surface as a failed send, not a fatal signal.
  ::signal(SIGPIPE, SIG_IGN);
  struct sigaction sa{};
  sa.sa_handler = on_term;
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);

  std::string err;
  const int listen_fd = fabric::tcp_listen(bind_addr, port, &err);
  if (listen_fd < 0) {
    std::fprintf(stderr, "campaignd: %s\n", err.c_str());
    return 1;
  }
  const u16 bound = fabric::local_port(listen_fd);
  if (!port_file.empty()) {
    std::ofstream f(port_file, std::ios::trunc);
    f << bound << "\n";
  }
  std::fprintf(stderr, "campaignd: listening on %s:%u (journals in %s)\n",
               bind_addr.c_str(), bound, dir.c_str());

  // Sessions carry a done flag so the accept loop can reap finished
  // threads as it goes — the daemon serves many campaigns over its life.
  struct Session {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::vector<Session> sessions;
  auto reap_done = [&sessions]() {
    for (size_t i = 0; i < sessions.size();) {
      if (sessions[i].done->load()) {
        sessions[i].thread.join();
        sessions.erase(sessions.begin() + static_cast<long>(i));
      } else {
        ++i;
      }
    }
  };

  while (!g_shutdown.load()) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);
    if (rc < 0 && errno != EINTR) {
      std::fprintf(stderr, "campaignd: poll failed: %s\n",
                   std::strerror(errno));
      break;
    }
    reap_done();
    if (rc <= 0) continue;
    const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      std::fprintf(stderr, "campaignd: accept failed: %s\n",
                   std::strerror(errno));
      break;
    }
    auto done = std::make_shared<std::atomic<bool>>(false);
    sessions.push_back(Session{std::thread([fd, dir, done]() {
                                 serve_session(fd, dir);
                                 done->store(true);
                               }),
                               done});
  }

  // SIGTERM drain: stop accepting, let in-flight shards finish (their
  // journals flush as they go either way).
  ::close(listen_fd);
  std::fprintf(stderr, "campaignd: draining %zu session(s)\n",
               sessions.size());
  for (Session& s : sessions) {
    if (s.thread.joinable()) s.thread.join();
  }
  return 0;
}
