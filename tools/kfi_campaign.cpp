// kfi_campaign: run one injection campaign from the command line.
//
//   kfi_campaign --arch p4|g4 --kind stack|register|data|code|errno
//                [--n COUNT] [--seed S] [--jobs N] [--loss P] [--scale K]
//                [--fault-model single-bit|multi-bit|burst|opclass]
//                [--bits K] [--burst SPAN] [--rate R] [--opclass CLASS]
//                [--errno-model nth|rate|nth-drawn|rate-drawn]
//                [--errno-syscalls LIST] [--errno-rate R] [--errno-nth N]
//                [--journal PATH] [--resume] [--retries K] [--stall SECS]
//                [--step-budget N] [--journal-flush fsync|flush]
//                [--fabric N] [--min-workers K] [--lease SECS]
//                [--fabric-backoff BASE] [--fabric-backoff-cap CAP]
//                [--max-restarts K] [--chaos-kill-after N]
//                [--worker-bin PATH] [--hosts H:P[,H:P...]]
//                [--heartbeat SECS] [--connect-timeout SECS]
//                [--expect-plan-fp HEX16] [--dry-run]
//                [--no-wrapper] [--p4-stackcheck]
//                [--no-spinlock-debug] [--csv PREFIX]
//                [--trace] [--trace-out CSV]
//
// --jobs N runs the campaign on N worker threads (0 = hardware
// concurrency; default 1 = serial).  The merged result is bit-identical
// for any worker count — parallelism only changes wall-clock time.
//
// --journal PATH makes the campaign durable: every completed injection is
// flushed to an append-only journal, and Ctrl-C exits cleanly with resume
// instructions.  --resume (requires --journal) skips already-journaled
// indices; the resumed result is bit-identical to an uninterrupted run.
// --retries/--stall/--step-budget tune the supervisor's fault isolation.
//
// --fabric N runs the campaign as N crash-isolated worker PROCESSES
// (kfi_worker), one shard each, coordinated over heartbeat leases with
// deterministic-backoff restarts and re-dispatch of a dead worker's
// remaining indices.  Requires --journal (shard journals live at
// PATH.shard<k>of<n>.kfij); --jobs then means engine threads per worker.
// kill -9 any worker — or the coordinator itself — and rerunning with
// --resume continues from the shard journals; the spliced result's
// fingerprint is byte-identical to the single-process run.
//
// --hosts runs the campaign across kfi_campaignd daemons over TCP, one
// shard per endpoint.  Requires --journal (retrieved shard journals land
// at PATH.shard<k>of<n>.kfij).  Daemons are crash domains with their own
// local journals: kill -9 a daemon mid-campaign and the coordinator
// revokes its lease, backs off deterministically, and re-dispatches;
// re-submissions resume the daemon-side journal so completed indices
// never re-execute.  The spliced result's fingerprint is bit-identical
// to the serial run.  While running, the progress line shows each host's
// live outcome tally.  --expect-plan-fp HEX16 pins the plan fingerprint
// up front: a mismatch (here or on any daemon) is a typed refusal before
// any injection runs.
//
// --dry-run prints the plan fingerprint, the fault/errno model
// fingerprints, and the shard map (who would run what, against which
// journals), then exits without executing anything.
//
// --fault-model selects what each injection corrupts (default: the
// paper's single-bit flip).  --bits K / --burst SPAN / --opclass CLASS
// imply their shape; --rate R switches the trigger to a Poisson process
// with mean R events per nominal run, pre-drawn at plan time so results
// stay deterministic and resumable.  Bad knob combinations are rejected
// before the plan is built (exit 2).
//
// --errno-* flags select the errno campaign family (--kind errno): no
// physical corruption — instead error returns are forced at the syscall
// boundary per a plan-frozen schedule, and the report shows how far each
// forced error cascades through the workload.  Any --errno-* flag implies
// --kind errno; combining them with physical fault-model knobs
// (--fault-model/--bits/--burst/--rate/--opclass) is rejected up front
// (exit 2), as is --kind errno without an eligible syscall set.
//
// --trace runs the campaign with the error-propagation trace subsystem
// attached: every record carries a PropagationSummary, the report gains a
// propagation segment, and journals persist the summaries (format v2).
// Observational — the result fingerprint matches an untraced run.
// --trace-out CSV (implies --trace) additionally writes one propagation
// row per traced record.
//
// Prints the Table-5/6-style row, the campaign throughput, the
// crash-cause distribution against the paper's reference, and the
// Figure-16 latency buckets; optionally writes PREFIX.records.csv /
// PREFIX.tally.csv / PREFIX.latency.csv.
#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>

#include "analysis/cascade.hpp"
#include "fabric/coordinator.hpp"
#include "fabric/remote.hpp"
#include "fabric/shard.hpp"
#include "analysis/csv.hpp"
#include "analysis/propagation.hpp"
#include "analysis/report.hpp"
#include "errnoinj/errno_model.hpp"
#include "inject/campaign.hpp"
#include "inject/fault_model.hpp"
#include "inject/journal.hpp"
#include "isa/opclass.hpp"

using namespace kfi;

namespace {

std::atomic<bool> g_cancel{false};

void on_sigint(int) { g_cancel.store(true); }

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --arch p4|g4 --kind stack|register|data|code|errno\n"
               "          [--n COUNT] [--seed S] [--jobs N] [--loss P]\n"
               "          [--fault-model single-bit|multi-bit|burst|opclass]\n"
               "          [--bits K] [--burst SPAN] [--rate R]\n"
               "          [--opclass alu|loadstore|branch|system|other]\n"
               "          [--errno-model nth|rate|nth-drawn|rate-drawn]\n"
               "          [--errno-syscalls LIST|all] [--errno-rate R]\n"
               "          [--errno-nth N]\n"
               "          [--scale K] [--journal PATH] [--resume]\n"
               "          [--retries K] [--stall SECS] [--step-budget N]\n"
               "          [--journal-flush fsync|flush] [--fabric N]\n"
               "          [--min-workers K] [--lease SECS]\n"
               "          [--fabric-backoff BASE] [--fabric-backoff-cap C]\n"
               "          [--max-restarts K] [--chaos-kill-after N]\n"
               "          [--worker-bin PATH] [--hosts H:P[,H:P...]]\n"
               "          [--heartbeat SECS] [--connect-timeout SECS]\n"
               "          [--expect-plan-fp HEX16] [--dry-run]\n"
               "          [--no-wrapper] [--p4-stackcheck]\n"
               "          [--no-spinlock-debug] [--csv PREFIX] [--quiet]\n"
               "          [--trace] [--trace-out CSV]\n"
               "  --jobs N:    worker threads (0 = hardware concurrency,\n"
               "               default 1); results are bit-identical for any N\n"
               "  --journal P: append every completed injection to journal P;\n"
               "               Ctrl-C flushes and prints resume instructions\n"
               "  --resume:    skip indices already in the journal (requires\n"
               "               --journal); bit-identical to an unbroken run\n"
               "  --fault-model M: what each injection corrupts (default\n"
               "               single-bit, the paper's model)\n"
               "  --bits K:    flip K distinct bits per fault (implies\n"
               "               multi-bit)\n"
               "  --burst S:   flip S adjacent bits per fault (implies burst)\n"
               "  --rate R:    Poisson trigger, mean R faults per nominal\n"
               "               run, pre-drawn at plan time (deterministic)\n"
               "  --opclass C: restrict code faults to one instruction\n"
               "               class (implies opclass; code campaigns only)\n"
               "  --errno-model M: errno campaign trigger/value (nth forces\n"
               "               -1 at one eligible invocation; rate draws a\n"
               "               Poisson event count; -drawn variants force a\n"
               "               drawn negative errno instead of -1); any\n"
               "               --errno-* flag implies --kind errno\n"
               "  --errno-syscalls L: comma list of eligible syscalls\n"
               "               (read,write,alloc,free,send,recv or all)\n"
               "  --errno-rate R: mean forced errors per run (implies the\n"
               "               rate trigger)\n"
               "  --errno-nth N: force at the Nth eligible invocation\n"
               "               (default: drawn per run)\n"
               "  --retries K: harness-error retries per index before\n"
               "               quarantine (default 1)\n"
               "  --journal-flush P: journal durability policy — fsync\n"
               "               (default, crash-durable) or flush (faster,\n"
               "               loses the OS-buffered tail on power loss)\n"
               "  --fabric N:  run as N crash-isolated worker processes\n"
               "               (requires --journal; shard journals at\n"
               "               PATH.shard<k>of<n>.kfij; kill -9 safe, the\n"
               "               spliced result is bit-identical to --jobs)\n"
               "  --min-workers K: abort once fewer than K worker slots\n"
               "               survive (default 1); journals stay resumable\n"
               "  --lease S:   heartbeat lease — a worker silent for S\n"
               "               seconds is killed and its shard re-dispatched\n"
               "  --fabric-backoff B: restart backoff base seconds\n"
               "               (deterministic exponential, cap via\n"
               "               --fabric-backoff-cap)\n"
               "  --max-restarts K: worker deaths one slot absorbs before\n"
               "               retirement (default 3)\n"
               "  --chaos-kill-after N: each shard's first worker SIGKILLs\n"
               "               itself after N injections (crash testing)\n"
               "  --worker-bin P: kfi_worker binary (default: next to\n"
               "               kfi_campaign)\n"
               "  --hosts L:   run across kfi_campaignd daemons (one shard\n"
               "               per host:port endpoint; requires --journal;\n"
               "               --min-workers/--lease/--fabric-backoff/\n"
               "               --max-restarts apply to hosts)\n"
               "  --heartbeat S: heartbeat period requested of daemons\n"
               "               (default 1.0)\n"
               "  --connect-timeout S: TCP connect timeout per dispatch\n"
               "               (default 5.0)\n"
               "  --expect-plan-fp H: refuse (typed, before any injection)\n"
               "               unless the built plan's fingerprint is H\n"
               "  --dry-run:   print plan/model fingerprints and the shard\n"
               "               map, then exit without executing\n"
               "  --stall S:   wall-clock watchdog budget per injection in\n"
               "               seconds (default off)\n"
               "  --trace:     shadow-state error-propagation tracing; adds\n"
               "               a propagation report segment (observational:\n"
               "               results are bit-identical with it off)\n"
               "  --trace-out CSV: write per-injection propagation metrics\n"
               "               to CSV (implies --trace)\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  inject::CampaignSpec spec;
  spec.injections = 500;
  std::string csv_prefix;
  std::string trace_out;
  std::string journal_path;
  bool resume = false;
  inject::RunControl control;
  u32 jobs = 1;
  inject::FlushPolicy flush = inject::FlushPolicy::kFsync;
  fabric::FabricOptions fabric_opt;
  u32 fabric_workers = 0;  // 0 = in-process campaign (no fabric)
  std::string hosts_text;  // non-empty = multi-host campaign (kfi_campaignd)
  std::string expect_fp_hex;
  bool dry_run = false;
  double heartbeat_seconds = 1.0, connect_timeout = 5.0;
  bool have_arch = false, have_kind = false, quiet = false;
  bool have_shape = false;
  bool have_errno = false;          // any --errno-* flag seen
  bool have_errno_trigger = false;  // --errno-model chose the trigger
  // The physical flag most recently seen, quoted in the mixed-family
  // rejection so the error names the offending value.
  std::string physical_flag;

  // Bad fault-model knobs are configuration errors, reported through the
  // same typed FaultModelError that plan building would throw.
  auto fail_model = [](const inject::FaultModelError& e) {
    std::fprintf(stderr, "fault model error: %s\n", e.what());
    return 2;
  };
  auto fail_errno = [](const errnoinj::ErrnoModelError& e) {
    std::fprintf(stderr, "errno model error: %s\n", e.what());
    return 2;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--arch") {
      const std::string v = next();
      if (v == "p4" || v == "cisca") {
        spec.arch = isa::Arch::kCisca;
      } else if (v == "g4" || v == "riscf") {
        spec.arch = isa::Arch::kRiscf;
      } else {
        usage(argv[0]);
        return 2;
      }
      have_arch = true;
    } else if (arg == "--kind") {
      const std::string v = next();
      if (v == "stack") spec.kind = inject::CampaignKind::kStack;
      else if (v == "register") spec.kind = inject::CampaignKind::kRegister;
      else if (v == "data") spec.kind = inject::CampaignKind::kData;
      else if (v == "code") spec.kind = inject::CampaignKind::kCode;
      else if (v == "errno") spec.kind = inject::CampaignKind::kErrno;
      else {
        usage(argv[0]);
        return 2;
      }
      have_kind = true;
    } else if (arg == "--n") {
      spec.injections = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--seed") {
      spec.seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--jobs") {
      jobs = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--loss") {
      spec.channel_loss = std::strtod(next(), nullptr);
    } else if (arg == "--fault-model") {
      const std::string v = next();
      if (v == "single-bit") spec.model.shape = inject::FaultShape::kSingleBit;
      else if (v == "multi-bit") spec.model.shape = inject::FaultShape::kMultiBit;
      else if (v == "burst") spec.model.shape = inject::FaultShape::kBurst;
      else if (v == "opclass") spec.model.shape = inject::FaultShape::kOpclass;
      else {
        return fail_model(inject::FaultModelError(
            "unknown fault model '" + v +
            "' (single-bit|multi-bit|burst|opclass)"));
      }
      have_shape = true;
      physical_flag = "--fault-model " + v;
    } else if (arg == "--bits") {
      const char* v = next();
      spec.model.bits = static_cast<u32>(std::strtoul(v, nullptr, 10));
      if (!have_shape) spec.model.shape = inject::FaultShape::kMultiBit;
      physical_flag = std::string("--bits ") + v;
    } else if (arg == "--burst") {
      const char* v = next();
      spec.model.burst_span = static_cast<u32>(std::strtoul(v, nullptr, 10));
      if (!have_shape) spec.model.shape = inject::FaultShape::kBurst;
      physical_flag = std::string("--burst ") + v;
    } else if (arg == "--rate") {
      const char* v = next();
      spec.model.rate = std::strtod(v, nullptr);
      spec.model.trigger = inject::FaultTrigger::kRate;
      physical_flag = std::string("--rate ") + v;
    } else if (arg == "--errno-model") {
      const std::string v = next();
      if (v == "nth") {
        spec.errno_model.trigger = errnoinj::ErrnoTrigger::kNth;
        spec.errno_model.value = errnoinj::ErrnoValue::kErrReturn;
      } else if (v == "rate") {
        spec.errno_model.trigger = errnoinj::ErrnoTrigger::kRate;
        spec.errno_model.value = errnoinj::ErrnoValue::kErrReturn;
      } else if (v == "nth-drawn") {
        spec.errno_model.trigger = errnoinj::ErrnoTrigger::kNth;
        spec.errno_model.value = errnoinj::ErrnoValue::kDrawnNegative;
      } else if (v == "rate-drawn") {
        spec.errno_model.trigger = errnoinj::ErrnoTrigger::kRate;
        spec.errno_model.value = errnoinj::ErrnoValue::kDrawnNegative;
      } else {
        return fail_errno(errnoinj::ErrnoModelError(
            "unknown errno model '" + v +
            "' (nth|rate|nth-drawn|rate-drawn)"));
      }
      have_errno = true;
      have_errno_trigger = true;
    } else if (arg == "--errno-syscalls") {
      const std::string v = next();
      std::string bad;
      const auto mask = errnoinj::parse_syscall_list(v, &bad);
      if (!mask) {
        return fail_errno(errnoinj::ErrnoModelError(
            "bad syscall '" + bad + "' in --errno-syscalls " + v +
            " (read,write,alloc,free,send,recv or all)"));
      }
      spec.errno_model.syscalls = *mask;
      have_errno = true;
    } else if (arg == "--errno-rate") {
      spec.errno_model.rate = std::strtod(next(), nullptr);
      if (!have_errno_trigger) {
        spec.errno_model.trigger = errnoinj::ErrnoTrigger::kRate;
      }
      have_errno = true;
    } else if (arg == "--errno-nth") {
      spec.errno_model.nth =
          static_cast<u32>(std::strtoul(next(), nullptr, 10));
      if (!have_errno_trigger) {
        spec.errno_model.trigger = errnoinj::ErrnoTrigger::kNth;
      }
      have_errno = true;
    } else if (arg == "--opclass") {
      const std::string v = next();
      const auto cls = isa::parse_opclass(v);
      if (!cls) {
        return fail_model(inject::FaultModelError(
            "unknown instruction class '" + v +
            "' (alu|loadstore|branch|system|other)"));
      }
      spec.model.opclass = *cls;
      if (!have_shape) spec.model.shape = inject::FaultShape::kOpclass;
      physical_flag = "--opclass " + v;
    } else if (arg == "--scale") {
      spec.workload_scale =
          static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--journal") {
      journal_path = next();
    } else if (arg == "--resume") {
      resume = true;
    } else if (arg == "--retries") {
      control.retries = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--stall") {
      control.stall_seconds = std::strtod(next(), nullptr);
    } else if (arg == "--step-budget") {
      control.step_budget = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--journal-flush") {
      const std::string v = next();
      const auto policy = inject::parse_flush_policy(v);
      if (!policy) {
        std::fprintf(stderr, "bad --journal-flush '%s' (fsync|flush)\n",
                     v.c_str());
        return 2;
      }
      flush = *policy;
    } else if (arg == "--fabric") {
      fabric_workers = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--min-workers") {
      fabric_opt.min_workers =
          static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--lease") {
      fabric_opt.lease_seconds = std::strtod(next(), nullptr);
    } else if (arg == "--fabric-backoff") {
      fabric_opt.backoff_base = std::strtod(next(), nullptr);
    } else if (arg == "--fabric-backoff-cap") {
      fabric_opt.backoff_cap = std::strtod(next(), nullptr);
    } else if (arg == "--max-restarts") {
      fabric_opt.max_restarts_per_slot =
          static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--chaos-kill-after") {
      fabric_opt.chaos_kill_after =
          static_cast<u32>(std::strtoul(next(), nullptr, 10));
    } else if (arg == "--worker-bin") {
      fabric_opt.worker_binary = next();
    } else if (arg == "--hosts") {
      hosts_text = next();
    } else if (arg == "--heartbeat") {
      heartbeat_seconds = std::strtod(next(), nullptr);
    } else if (arg == "--connect-timeout") {
      connect_timeout = std::strtod(next(), nullptr);
    } else if (arg == "--expect-plan-fp") {
      expect_fp_hex = next();
    } else if (arg == "--dry-run") {
      dry_run = true;
    } else if (arg == "--no-wrapper") {
      spec.machine.g4_stack_wrapper = false;
    } else if (arg == "--p4-stackcheck") {
      spec.machine.p4_stack_limit_check = true;
    } else if (arg == "--no-spinlock-debug") {
      spec.machine.spinlock_debug = false;
    } else if (arg == "--csv") {
      csv_prefix = next();
    } else if (arg == "--trace") {
      control.trace = true;
    } else if (arg == "--trace-out") {
      trace_out = next();
      control.trace = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  // The errno family is selected either way: --kind errno (defaulting to
  // every fallible syscall) or any --errno-* flag (implying the kind).
  // Mixing the two campaign families is a configuration error, rejected
  // before any plan work starts.
  if (have_errno ||
      (have_kind && spec.kind == inject::CampaignKind::kErrno)) {
    if (!physical_flag.empty()) {
      return fail_errno(errnoinj::ErrnoModelError(
          "physical fault-model flags cannot be combined with an errno "
          "campaign (offending flag: " +
          physical_flag + ")"));
    }
    if (have_kind && spec.kind != inject::CampaignKind::kErrno) {
      return fail_errno(errnoinj::ErrnoModelError(
          "errno flags set on a physical campaign (--kind " +
          std::string(inject::campaign_kind_name(spec.kind)) + ")"));
    }
    spec.kind = inject::CampaignKind::kErrno;
    have_kind = true;
    if (spec.errno_model.syscalls == 0) {
      spec.errno_model.syscalls = errnoinj::eligible_syscall_mask();
    }
  }
  if (!have_arch || !have_kind) {
    usage(argv[0]);
    return 2;
  }
  if (resume && journal_path.empty()) {
    std::fprintf(stderr, "--resume requires --journal PATH\n");
    return 2;
  }
  if (fabric_workers > 0 && journal_path.empty()) {
    std::fprintf(stderr,
                 "--fabric requires --journal PATH (shard journals are "
                 "the crash-recovery substrate)\n");
    return 2;
  }
  if (fabric_workers > 0 && control.trace) {
    std::fprintf(stderr, "--trace is not supported with --fabric yet\n");
    return 2;
  }
  std::vector<fabric::HostSpec> hosts;
  if (!hosts_text.empty()) {
    const auto parsed = fabric::parse_host_list(hosts_text);
    if (!parsed) {
      std::fprintf(stderr,
                   "bad --hosts '%s' (expected host:port[,host:port...])\n",
                   hosts_text.c_str());
      return 2;
    }
    hosts = *parsed;
    if (fabric_workers > 0) {
      std::fprintf(stderr,
                   "--hosts and --fabric are mutually exclusive (local "
                   "worker processes vs remote daemons)\n");
      return 2;
    }
    if (journal_path.empty() && !dry_run) {
      std::fprintf(stderr,
                   "--hosts requires --journal PATH (retrieved shard "
                   "journals are the crash-recovery substrate)\n");
      return 2;
    }
    if (control.trace) {
      std::fprintf(stderr, "--trace is not supported with --hosts yet\n");
      return 2;
    }
  }
  try {
    spec.errno_model.validate();
  } catch (const errnoinj::ErrnoModelError& e) {
    return fail_errno(e);
  }
  try {
    spec.model.validate(spec.kind);
  } catch (const inject::FaultModelError& e) {
    return fail_model(e);
  }

  const inject::CampaignPlan plan = inject::build_campaign_plan(spec);
  const u64 plan_fp = inject::plan_fingerprint(plan);

  // The --expect-plan-fp handshake, client side: the same version-skew
  // refusal every daemon and worker applies, typed and raised before any
  // injection runs anywhere.
  if (!expect_fp_hex.empty() &&
      plan_fp != std::strtoull(expect_fp_hex.c_str(), nullptr, 16)) {
    std::fprintf(stderr,
                 "plan fingerprint skew: built %016llx, --expect-plan-fp "
                 "%s (binaries or flags disagree)\n",
                 static_cast<unsigned long long>(plan_fp),
                 expect_fp_hex.c_str());
    return 3;
  }

  if (dry_run) {
    // Print what WOULD run — fingerprints and the shard map — without
    // executing a single injection.
    std::printf("plan fingerprint: %016llx\n",
                static_cast<unsigned long long>(plan_fp));
    std::printf("fault model fingerprint: %016llx\n",
                static_cast<unsigned long long>(
                    inject::fault_model_fingerprint(spec.model)));
    std::printf("errno model fingerprint: %016llx\n",
                static_cast<unsigned long long>(
                    errnoinj::errno_model_fingerprint(spec.errno_model)));
    std::printf("targets: %zu\n", plan.targets.size());
    const u32 shards =
        !hosts.empty() ? static_cast<u32>(hosts.size())
                       : (fabric_workers > 0 ? fabric_workers : 1);
    const auto slices = fabric::shard_indices(
        static_cast<u32>(plan.targets.size()), shards);
    std::printf("shard map (%u shard%s):\n", shards,
                shards == 1 ? "" : "s");
    for (u32 s = 0; s < slices.size(); ++s) {
      std::string line = "  shard " + std::to_string(s) + ": " +
                         std::to_string(slices[s].size()) + " indices";
      if (!slices[s].empty()) {
        line += " [" + fabric::format_index_ranges(slices[s]) + "]";
      }
      if (s < hosts.size()) line += " -> " + hosts[s].label();
      if (!journal_path.empty()) {
        line += " journal " +
                (shards == 1 ? journal_path
                             : fabric::shard_journal_path(journal_path, s,
                                                          shards));
      }
      std::puts(line.c_str());
    }
    std::puts("dry run: nothing executed");
    return 0;
  }

  std::optional<inject::InjectionJournal> journal;
  inject::CampaignResult result;
  if (!hosts.empty()) {
    fabric::RemoteOptions remote_opt;
    remote_opt.hosts = hosts;
    remote_opt.min_workers = fabric_opt.min_workers;
    remote_opt.journal_prefix = journal_path;
    remote_opt.fresh = !resume;
    remote_opt.jobs_per_host = jobs;
    remote_opt.lease_seconds = fabric_opt.lease_seconds;
    remote_opt.heartbeat_seconds = heartbeat_seconds;
    remote_opt.connect_timeout_seconds = connect_timeout;
    remote_opt.backoff_base = fabric_opt.backoff_base;
    remote_opt.backoff_cap = fabric_opt.backoff_cap;
    remote_opt.max_restarts_per_host = fabric_opt.max_restarts_per_slot;
    remote_opt.flush = flush;
    remote_opt.retries = control.retries;
    remote_opt.stall_seconds = control.stall_seconds;
    remote_opt.verbose = !quiet;
    if (!quiet) {
      // Live per-host tally: one line, redrawn on every progress frame.
      static const char* kOutcomeTags[fabric::kFrameOutcomeSlots] = {
          "NA", "NM", "FSV", "KC", "HU", "HE"};
      remote_opt.progress =
          [](const std::vector<fabric::RemoteHostProgress>& snap) {
            std::string line = "\r";
            for (const fabric::RemoteHostProgress& h : snap) {
              if (h.total == 0 && !h.connected) continue;
              if (line.size() > 1) line += "  ";
              line += h.host + " s" + std::to_string(h.shard) + " " +
                      std::to_string(h.completed) + "/" +
                      std::to_string(h.total) + " [";
              for (size_t i = 0; i < h.outcomes.size(); ++i) {
                if (i > 0) line += " ";
                line += std::string(kOutcomeTags[i]) + ":" +
                        std::to_string(h.outcomes[i]);
              }
              line += "]";
            }
            line += "   ";
            std::fputs(line.c_str(), stderr);
          };
    }
    try {
      fabric::RemoteCoordinator coordinator(remote_opt);
      if (!resume) {
        // A fresh run must not resurrect a previous campaign's retrieved
        // shards; --resume keeps them (the whole point after a crash).
        for (const std::string& p : coordinator.journal_paths(
                 static_cast<u32>(plan.targets.size()))) {
          std::filesystem::remove(p);
        }
      }
      result = coordinator.run(plan);
      if (!quiet) std::fputc('\n', stderr);
    } catch (const fabric::FabricError& e) {
      if (!quiet) std::fputc('\n', stderr);
      std::fprintf(stderr, "fabric error: %s\n", e.what());
      return 1;
    } catch (const inject::JournalError& e) {
      std::fprintf(stderr, "journal error: %s\n", e.what());
      return 1;
    }
  } else if (fabric_workers > 0) {
    fabric_opt.workers = fabric_workers;
    fabric_opt.jobs_per_worker = jobs;
    fabric_opt.journal_prefix = journal_path;
    fabric_opt.flush = flush;
    fabric_opt.retries = control.retries;
    fabric_opt.stall_seconds = control.stall_seconds;
    fabric_opt.verbose = !quiet;
    if (fabric_opt.worker_binary.empty()) {
      // kfi_worker is installed next to kfi_campaign.
      fabric_opt.worker_binary =
          (std::filesystem::path(argv[0]).parent_path() / "kfi_worker")
              .string();
    }
    try {
      fabric::FabricCoordinator coordinator(fabric_opt);
      if (!resume) {
        // A fresh fabric run must not resurrect a previous campaign's
        // shards; --resume keeps them (the whole point after a crash).
        for (const std::string& p : coordinator.journal_paths(
                 static_cast<u32>(plan.targets.size()))) {
          std::filesystem::remove(p);
        }
      }
      result = coordinator.run(plan);
    } catch (const fabric::FabricError& e) {
      std::fprintf(stderr, "fabric error: %s\n", e.what());
      return 1;
    } catch (const inject::JournalError& e) {
      std::fprintf(stderr, "journal error: %s\n", e.what());
      return 1;
    }
  } else {
    if (!journal_path.empty()) {
      try {
        journal = resume
                      ? inject::InjectionJournal::resume(journal_path, plan,
                                                         flush)
                      : inject::InjectionJournal::create(journal_path, plan,
                                                         flush);
      } catch (const inject::JournalError& e) {
        std::fprintf(stderr, "journal error: %s\n", e.what());
        return 1;
      }
      control.journal = &*journal;
      // A durable campaign is interruptible: flush-and-resume on Ctrl-C.
      std::signal(SIGINT, on_sigint);
      control.cancel = &g_cancel;
    }

    result = inject::CampaignEngine(jobs).run(
        plan,
        quiet ? inject::ProgressFn{} : [](u32 done, u32 total) {
          if (done % 100 == 0 || done == total) {
            std::fprintf(stderr, "\r[%u/%u]", done, total);
            if (done == total) std::fputc('\n', stderr);
          }
        },
        control);
  }

  if (result.interrupted) {
    // The journal already holds every completed record; report the
    // partial tally and how to pick the campaign back up.
    std::fputc('\n', stderr);
    std::puts(analysis::summarize_campaign(result).c_str());
    std::printf(
        "\ninterrupted: %llu/%zu injections journaled to %s\n"
        "resume with: --journal %s --resume (plus the same campaign flags)\n",
        static_cast<unsigned long long>(result.executed()),
        result.records.size(), journal_path.c_str(), journal_path.c_str());
    return 130;  // conventional SIGINT exit
  }

  const analysis::OutcomeTally tally =
      analysis::tally_records(result.records);
  const bool errno_campaign = spec.kind == inject::CampaignKind::kErrno;

  std::puts(analysis::summarize_campaign(result).c_str());
  // The determinism arbiter, printed so scripts (and CI) can pin it:
  // equal fingerprints mean bit-identical campaigns, whatever the
  // jobs / fabric / resume topology that produced them.
  std::printf("result fingerprint: %016llx\n",
              static_cast<unsigned long long>(
                  inject::result_fingerprint(result)));
  std::puts("");
  if (errno_campaign) {
    // The paper has no errno rows: the cascade segment replaces the
    // Table-5/6 and crash-cause comparisons.
    std::fputs(analysis::render_cascades(
                   std::string(isa::arch_name(spec.arch)) + " " +
                       spec.errno_model.name(),
                   analysis::tally_cascades(result.records),
                   analysis::tally_cascades_by_syscall(result.records))
                   .c_str(),
               stdout);
  } else {
    std::fputs(analysis::render_failure_table(spec.arch, {{spec.kind, tally}})
                   .c_str(),
               stdout);
    std::puts("");
    std::fputs(analysis::render_cause_comparison(
                   spec.arch, "Crash causes", tally,
                   analysis::paper_campaign_crash_causes(spec.arch, spec.kind))
                   .c_str(),
               stdout);
  }
  std::puts("");
  std::fputs(analysis::render_profile(result.hot_functions).c_str(), stdout);
  if (control.trace) {
    std::puts("");
    std::fputs(analysis::render_propagation(
                   std::string(isa::arch_name(spec.arch)) + " " +
                       inject::campaign_kind_name(spec.kind),
                   analysis::tally_propagation(result.records))
                   .c_str(),
               stdout);
  }

  if (!trace_out.empty()) {
    std::ofstream f(trace_out);
    analysis::write_propagation_csv(f, result.records);
    std::printf("wrote %s\n", trace_out.c_str());
  }

  if (!csv_prefix.empty()) {
    {
      std::ofstream f(csv_prefix + ".records.csv");
      analysis::write_records_csv(f, result.records);
    }
    {
      std::ofstream f(csv_prefix + ".tally.csv");
      analysis::write_tally_csv(f, tally);
    }
    {
      std::ofstream f(csv_prefix + ".latency.csv");
      analysis::write_latency_csv(f, tally);
    }
    if (errno_campaign) {
      std::ofstream f(csv_prefix + ".cascade.csv");
      analysis::write_cascade_csv(f, result.records);
      std::printf("wrote %s.{records,tally,latency,cascade}.csv\n",
                  csv_prefix.c_str());
    } else {
      std::printf("wrote %s.{records,tally,latency}.csv\n",
                  csv_prefix.c_str());
    }
  }
  return 0;
}
