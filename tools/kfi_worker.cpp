// kfi_worker: one crash domain of a fabric campaign.
//
//   kfi_worker --spec HEX --indices RANGES --journal PATH
//              [--expect-plan-fp HEX16] [--shard K] [--shards N]
//              [--status-fd FD] [--jobs J] [--heartbeat SECS]
//              [--retries K] [--stall SECS] [--journal-flush fsync|flush]
//              [--chaos-kill-after N]
//
// Spawned by the fabric coordinator (kfi_campaign --fabric N), one per
// shard.  The worker rebuilds the campaign plan deterministically from
// the serialized spec blob, verifies its fingerprint against the
// coordinator's (--expect-plan-fp; a mismatch means the two binaries
// disagree and exits 3 before any injection runs), resumes or creates
// the shard journal, and runs the engine over its index slice with every
// completed record fsync'd before the next one starts.  Status frames
// (hello / progress / heartbeat / done / error) flow to --status-fd; if
// the coordinator vanishes, the next frame write raises SIGPIPE and the
// default disposition kills this process — orphaned workers self-clean.
//
// --chaos-kill-after N makes the worker raise SIGKILL after completing N
// injections: the chaos tests use it for deterministic mid-campaign
// worker loss (everything up to the kill is already durable in the
// journal, so the restarted worker resumes bit-identically).
//
// Also usable standalone (no --status-fd) to run one shard of a campaign
// by hand; kfi_journal_splice merges the shard journals afterwards.
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>

#include "fabric/net.hpp"
#include "fabric/shard.hpp"
#include "fabric/wire.hpp"
#include "inject/engine.hpp"
#include "inject/journal.hpp"

using namespace kfi;

namespace {

int g_status_fd = -1;

/// Live outcome tally over this worker's slice (resumed + executed),
/// carried on every progress/heartbeat/done frame.  Atomics because the
/// heartbeat thread reads while the engine's record observer writes.
std::array<std::atomic<u32>, fabric::kFrameOutcomeSlots> g_outcomes{};

void fill_outcomes(fabric::StatusFrame& frame) {
  for (size_t i = 0; i < frame.outcomes.size(); ++i) {
    frame.outcomes[i] = g_outcomes[i].load(std::memory_order_relaxed);
  }
}

void count_outcome(inject::OutcomeCategory outcome) {
  const auto slot = static_cast<size_t>(outcome);
  if (slot < g_outcomes.size()) {
    g_outcomes[slot].fetch_add(1, std::memory_order_relaxed);
  }
}

void send_frame(fabric::StatusFrame frame) {
  if (g_status_fd < 0) return;
  const std::vector<u8> bytes = fabric::encode_frame(frame);
  // One write per frame: frames are far below PIPE_BUF, so they land
  // atomically even with the heartbeat thread writing concurrently.
  // write_all retries EINTR and short writes; any other failure means
  // the coordinator is gone (and SIGPIPE was somehow not fatal).
  if (!fabric::write_all(g_status_fd, bytes.data(), bytes.size())) {
    std::exit(1);
  }
}

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --spec HEX --indices RANGES --journal PATH\n"
               "          [--expect-plan-fp HEX16] [--shard K] [--shards N]\n"
               "          [--status-fd FD] [--jobs J] [--heartbeat SECS]\n"
               "          [--retries K] [--stall SECS]\n"
               "          [--journal-flush fsync|flush]\n"
               "          [--chaos-kill-after N]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_hex, indices_text, journal_path, expect_fp_hex;
  u32 shard = 0, shards = 1, jobs = 1, retries = 1;
  u32 chaos_kill_after = 0;
  double heartbeat = 1.0, stall = 0.0;
  inject::FlushPolicy flush = inject::FlushPolicy::kFsync;
  bool have_indices = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--spec") spec_hex = next();
    else if (arg == "--indices") { indices_text = next(); have_indices = true; }
    else if (arg == "--journal") journal_path = next();
    else if (arg == "--expect-plan-fp") expect_fp_hex = next();
    else if (arg == "--shard") shard = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    else if (arg == "--shards") shards = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    else if (arg == "--status-fd") g_status_fd = static_cast<int>(std::strtol(next(), nullptr, 10));
    else if (arg == "--jobs") jobs = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    else if (arg == "--heartbeat") heartbeat = std::strtod(next(), nullptr);
    else if (arg == "--retries") retries = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    else if (arg == "--stall") stall = std::strtod(next(), nullptr);
    else if (arg == "--chaos-kill-after") chaos_kill_after = static_cast<u32>(std::strtoul(next(), nullptr, 10));
    else if (arg == "--journal-flush") {
      const auto policy = inject::parse_flush_policy(next());
      if (!policy) {
        usage(argv[0]);
        return 2;
      }
      flush = *policy;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (spec_hex.empty() || !have_indices || journal_path.empty()) {
    usage(argv[0]);
    return 2;
  }

  const auto spec_bytes = fabric::from_hex(spec_hex);
  if (!spec_bytes) {
    std::fprintf(stderr, "kfi_worker: --spec is not valid hex\n");
    return 2;
  }
  const auto spec = fabric::deserialize_campaign_spec(*spec_bytes);
  if (!spec) {
    std::fprintf(stderr, "kfi_worker: --spec blob does not decode\n");
    return 2;
  }
  const auto indices = fabric::parse_index_ranges(indices_text);
  if (!indices || indices->empty()) {
    std::fprintf(stderr, "kfi_worker: bad --indices '%s'\n",
                 indices_text.c_str());
    return 2;
  }

  fabric::StatusFrame base;
  base.shard = shard;
  base.pid = static_cast<u32>(::getpid());
  base.total = static_cast<u32>(indices->size());

  try {
    const inject::CampaignPlan plan = inject::build_campaign_plan(*spec);
    const u64 plan_fp = inject::plan_fingerprint(plan);
    if (!expect_fp_hex.empty() &&
        plan_fp != std::strtoull(expect_fp_hex.c_str(), nullptr, 16)) {
      std::fprintf(stderr,
                   "kfi_worker: rebuilt plan fingerprint %016llx != "
                   "expected %s\n",
                   static_cast<unsigned long long>(plan_fp),
                   expect_fp_hex.c_str());
      return 3;
    }
    base.plan_fingerprint = plan_fp;
    if (static_cast<u32>(shards) != 0) {
      (void)shards;  // carried in the journal path; nothing to validate
    }
    for (const u32 i : *indices) {
      if (i >= plan.targets.size()) {
        std::fprintf(stderr, "kfi_worker: index %u out of range (plan has "
                             "%zu targets)\n",
                     i, plan.targets.size());
        return 2;
      }
    }

    // Resume the shard journal if it exists (restart after a death),
    // create it otherwise.
    inject::InjectionJournal journal = [&]() {
      try {
        return inject::InjectionJournal::resume(journal_path, plan, flush);
      } catch (const inject::JournalError&) {
        return inject::InjectionJournal::create(journal_path, plan, flush);
      }
    }();

    // Seed the live tally with whatever the resumed journal recovered:
    // the coordinator's view starts where the last run's durable records
    // left off.
    for (const inject::JournalEntry& e : journal.recovered()) {
      count_outcome(e.record.outcome);
    }

    base.type = fabric::FrameType::kHello;
    send_frame(base);

    // Heartbeat thread: keeps the coordinator's lease alive through long
    // injections (progress frames only flow at completion boundaries).
    std::atomic<u32> done_count{0};
    std::atomic<bool> stop_heartbeat{false};
    std::thread heartbeat_thread;
    if (g_status_fd >= 0 && heartbeat > 0.0) {
      heartbeat_thread = std::thread([&]() {
        while (!stop_heartbeat.load()) {
          std::this_thread::sleep_for(
              std::chrono::duration<double>(heartbeat));
          if (stop_heartbeat.load()) break;
          fabric::StatusFrame f = base;
          f.type = fabric::FrameType::kHeartbeat;
          f.done = done_count.load();
          fill_outcomes(f);
          send_frame(f);
        }
      });
    }
    struct HeartbeatGuard {
      std::atomic<bool>& stop;
      std::thread& thread;
      ~HeartbeatGuard() {
        stop.store(true);
        if (thread.joinable()) thread.join();
      }
    } guard{stop_heartbeat, heartbeat_thread};

    inject::RunControl control;
    control.journal = &journal;
    control.indices = &*indices;
    control.retries = retries;
    control.stall_seconds = stall;
    control.record_observer = [](u32, const inject::InjectionRecord& record) {
      count_outcome(record.outcome);
    };
    std::atomic<u32> completions{0};
    const inject::CampaignResult result = inject::CampaignEngine(jobs).run(
        plan,
        [&](u32 done, u32 total) {
          done_count.store(done);
          // Chaos: die loudly after N completions in THIS process, with
          // everything so far already fsync'd to the shard journal.
          if (chaos_kill_after > 0 &&
              completions.fetch_add(1) + 1 >= chaos_kill_after &&
              done < total) {
            ::raise(SIGKILL);
          }
          fabric::StatusFrame f = base;
          f.type = fabric::FrameType::kProgress;
          f.done = done;
          f.total = total;
          fill_outcomes(f);
          send_frame(f);
        },
        control);

    fabric::StatusFrame f = base;
    f.type = fabric::FrameType::kDone;
    f.done = static_cast<u32>(indices->size());
    fill_outcomes(f);
    f.executed = result.journal_flushes;
    f.quarantined = result.quarantined;
    f.stalls = result.stalls;
    f.harness_retries = result.harness_retries;
    f.backoff_waits = result.retry_backoff_waits;
    f.backoff_seconds = result.retry_backoff_seconds;
    send_frame(f);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "kfi_worker: %s\n", e.what());
    fabric::StatusFrame f = base;
    f.type = fabric::FrameType::kError;
    f.message = e.what();
    send_frame(f);
    return 1;
  }
}
