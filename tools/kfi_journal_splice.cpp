// kfi_journal_splice: merge fabric shard journals into one journal.
//
//   kfi_journal_splice --out MERGED.kfij SHARD1.kfij SHARD2.kfij ...
//
// Validates that every shard was written for the same campaign (version,
// plan / fault-model / errno-model fingerprints, target count — a
// mismatch is refused), deduplicates entries by index (a successful
// record supersedes a quarantined one; conflicting successful records
// mean the shard set mixes campaigns and are refused), and writes the
// chosen frames in index order.  The output is a normal journal:
// `kfi_campaign --journal MERGED.kfij --resume` (with the original
// campaign flags) replays the merged campaign bit-identically — the
// splice is exact bookkeeping, not aggregation.
//
// Exit 0 on success (stats on stdout), 1 on a journal/splice error,
// 2 on usage errors.  "missing" in the stats means the shard set does
// not yet cover the whole campaign (an interrupted fabric): the merged
// journal is still valid and resumable.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "fabric/splice.hpp"

using namespace kfi;

int main(int argc, char** argv) {
  std::string out_path;
  std::vector<std::string> shard_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "usage: %s --out MERGED.kfij SHARD.kfij...\n",
                     argv[0]);
        return 2;
      }
      out_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "usage: %s --out MERGED.kfij SHARD.kfij...\n",
                   argv[0]);
      return 2;
    } else {
      shard_paths.push_back(arg);
    }
  }
  if (out_path.empty() || shard_paths.empty()) {
    std::fprintf(stderr, "usage: %s --out MERGED.kfij SHARD.kfij...\n",
                 argv[0]);
    return 2;
  }
  try {
    const fabric::SpliceStats stats =
        fabric::splice_journal_files(shard_paths, out_path);
    std::printf(
        "spliced %llu shard journals -> %s\n"
        "entries=%llu chosen=%llu duplicates=%llu quarantined=%llu "
        "missing=%llu\n",
        static_cast<unsigned long long>(stats.files), out_path.c_str(),
        static_cast<unsigned long long>(stats.entries),
        static_cast<unsigned long long>(stats.chosen),
        static_cast<unsigned long long>(stats.duplicates),
        static_cast<unsigned long long>(stats.quarantined),
        static_cast<unsigned long long>(stats.missing));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "splice error: %s\n", e.what());
    return 1;
  }
}
